// Package ts provides the time-series data-preparation primitives of the
// ALBADross pipeline (Sec. IV-E-1 of the paper): multivariate series
// containers, linear interpolation over missing samples, differencing of
// cumulative counters, trimming of application init/teardown phases, and
// min-max / z-score scaling.
//
// Missing samples are represented as NaN, matching how gaps appear after
// aligning LDMS samples onto a fixed 1 Hz grid.
package ts

import (
	"errors"
	"fmt"
	"math"
)

// Series is a single metric's time series on a fixed sampling grid.
// Missing observations are NaN.
type Series []float64

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	cp := make(Series, len(s))
	copy(cp, s)
	return cp
}

// Multivariate is the telemetry collected on one compute node during one
// application run: one equally-long Series per metric, indexed in parallel
// with a metric-name table kept by the caller.
type Multivariate struct {
	// Metrics[m][t] is metric m at timestep t.
	Metrics []Series
}

// NewMultivariate allocates an all-zero multivariate block of the given
// shape.
func NewMultivariate(nMetrics, nSteps int) *Multivariate {
	m := &Multivariate{Metrics: make([]Series, nMetrics)}
	for i := range m.Metrics {
		m.Metrics[i] = make(Series, nSteps)
	}
	return m
}

// Steps returns the number of timesteps (0 for an empty block).
func (m *Multivariate) Steps() int {
	if len(m.Metrics) == 0 {
		return 0
	}
	return len(m.Metrics[0])
}

// Validate checks that every metric series has the same length.
func (m *Multivariate) Validate() error {
	if len(m.Metrics) == 0 {
		return nil
	}
	n := len(m.Metrics[0])
	for i, s := range m.Metrics {
		if len(s) != n {
			return fmt.Errorf("ts: metric %d has %d steps, expected %d", i, len(s), n)
		}
	}
	return nil
}

// Clone deep-copies the block.
func (m *Multivariate) Clone() *Multivariate {
	out := &Multivariate{Metrics: make([]Series, len(m.Metrics))}
	for i, s := range m.Metrics {
		out.Metrics[i] = s.Clone()
	}
	return out
}

// Interpolate fills NaN gaps in place by linear interpolation between the
// nearest finite neighbours. Leading and trailing gaps are filled by
// propagating the first/last finite value. A series with no finite values
// becomes all zeros. It returns the number of filled samples.
func Interpolate(s Series) int {
	n := len(s)
	filled := 0
	// Find first finite.
	first := -1
	for i, v := range s {
		if !math.IsNaN(v) {
			first = i
			break
		}
	}
	if first == -1 {
		for i := range s {
			s[i] = 0
		}
		return n
	}
	for i := 0; i < first; i++ {
		s[i] = s[first]
		filled++
	}
	last := first
	for i := first + 1; i < n; i++ {
		if math.IsNaN(s[i]) {
			continue
		}
		if i > last+1 {
			// Interpolate the gap (last, i).
			span := float64(i - last)
			for j := last + 1; j < i; j++ {
				frac := float64(j-last) / span
				s[j] = s[last]*(1-frac) + s[i]*frac
				filled++
			}
		}
		last = i
	}
	for i := last + 1; i < n; i++ {
		s[i] = s[last]
		filled++
	}
	return filled
}

// HoldLast fills NaN gaps in place by propagating the most recent finite
// value forward (sample-and-hold) — the conservative gap policy for live
// streams where the future neighbour interpolation needs has not arrived
// yet. Leading gaps are backfilled from the first finite value; a series
// with no finite values becomes all zeros. It returns the number of
// filled samples.
func HoldLast(s Series) int {
	filled := 0
	first := -1
	for i, v := range s {
		if !math.IsNaN(v) {
			first = i
			break
		}
	}
	if first == -1 {
		for i := range s {
			s[i] = 0
		}
		return len(s)
	}
	for i := 0; i < first; i++ {
		s[i] = s[first]
		filled++
	}
	last := s[first]
	for i := first + 1; i < len(s); i++ {
		if math.IsNaN(s[i]) {
			s[i] = last
			filled++
		} else {
			last = s[i]
		}
	}
	return filled
}

// HoldLastAll applies HoldLast to every metric of the block in place and
// returns the total number of filled samples.
func HoldLastAll(m *Multivariate) int {
	total := 0
	for _, s := range m.Metrics {
		total += HoldLast(s)
	}
	return total
}

// CountNaN returns the number of NaN samples in the block.
func CountNaN(m *Multivariate) int {
	n := 0
	for _, s := range m.Metrics {
		for _, v := range s {
			if math.IsNaN(v) {
				n++
			}
		}
	}
	return n
}

// InterpolateAll interpolates every metric of the block in place and
// returns the total number of filled samples.
func InterpolateAll(m *Multivariate) int {
	total := 0
	for _, s := range m.Metrics {
		total += Interpolate(s)
	}
	return total
}

// Diff replaces a cumulative counter with per-step deltas:
// out[t] = s[t+1] - s[t]. The result is one element shorter. Negative
// deltas (counter wrap or reset) are clamped to zero, which is what LDMS
// post-processing does for wrapping counters.
func Diff(s Series) Series {
	if len(s) < 2 {
		return Series{}
	}
	out := make(Series, len(s)-1)
	for i := 1; i < len(s); i++ {
		d := s[i] - s[i-1]
		if d < 0 {
			d = 0
		}
		out[i-1] = d
	}
	return out
}

// DiffCounters applies Diff to the metrics flagged cumulative and truncates
// the remaining metrics by one sample so all series stay aligned.
// cumulative[i] corresponds to m.Metrics[i]. It returns an error if the
// flag slice length mismatches.
func DiffCounters(m *Multivariate, cumulative []bool) error {
	if len(cumulative) != len(m.Metrics) {
		return fmt.Errorf("ts: %d cumulative flags for %d metrics", len(cumulative), len(m.Metrics))
	}
	if m.Steps() < 2 {
		return errors.New("ts: need at least 2 steps to difference")
	}
	for i, s := range m.Metrics {
		if cumulative[i] {
			m.Metrics[i] = Diff(s)
		} else {
			m.Metrics[i] = s[1:].Clone()
		}
	}
	return nil
}

// Trim removes head samples and tail samples from every metric, dropping
// application initialization and termination transients. It returns an
// error if fewer than one sample would remain.
func Trim(m *Multivariate, head, tail int) error {
	if head < 0 || tail < 0 {
		return errors.New("ts: negative trim")
	}
	n := m.Steps()
	if n-head-tail < 1 {
		return fmt.Errorf("ts: trim(%d,%d) leaves no samples of %d", head, tail, n)
	}
	for i, s := range m.Metrics {
		m.Metrics[i] = s[head : n-tail].Clone()
	}
	return nil
}

// MinMaxScaler rescales feature columns to [0, 1] using bounds learned from
// a training matrix, mirroring sklearn.preprocessing.MinMaxScaler. Columns
// that are constant in the training data map to 0.
type MinMaxScaler struct {
	Min   []float64 // per-column minimum seen during Fit
	Range []float64 // per-column max-min (0 for constant columns)
}

// FitMinMax learns column bounds from the rows of x. All rows must have
// equal length. NaN entries are ignored while fitting.
func FitMinMax(x [][]float64) (*MinMaxScaler, error) {
	if len(x) == 0 {
		return nil, errors.New("ts: cannot fit scaler on empty matrix")
	}
	d := len(x[0])
	sc := &MinMaxScaler{Min: make([]float64, d), Range: make([]float64, d)}
	maxs := make([]float64, d)
	for j := 0; j < d; j++ {
		sc.Min[j] = math.Inf(1)
		maxs[j] = math.Inf(-1)
	}
	for i, row := range x {
		if len(row) != d {
			return nil, fmt.Errorf("ts: row %d has %d cols, expected %d", i, len(row), d)
		}
		for j, v := range row {
			if math.IsNaN(v) {
				continue
			}
			if v < sc.Min[j] {
				sc.Min[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	for j := 0; j < d; j++ {
		if math.IsInf(sc.Min[j], 1) { // all-NaN column
			sc.Min[j], maxs[j] = 0, 0
		}
		sc.Range[j] = maxs[j] - sc.Min[j]
	}
	return sc, nil
}

// Transform scales rows in place using the learned bounds. Values outside
// the training range extrapolate beyond [0,1], as sklearn does. NaNs map
// to 0 so downstream models never see NaN features.
func (sc *MinMaxScaler) Transform(x [][]float64) error {
	for i, row := range x {
		if len(row) != len(sc.Min) {
			return fmt.Errorf("ts: row %d has %d cols, scaler expects %d", i, len(row), len(sc.Min))
		}
		for j, v := range row {
			switch {
			case math.IsNaN(v):
				row[j] = 0
			case sc.Range[j] == 0:
				row[j] = 0
			default:
				row[j] = (v - sc.Min[j]) / sc.Range[j]
			}
		}
	}
	return nil
}

// ZScore standardizes a single series (mean 0, std 1) and returns a new
// slice; a constant series returns all zeros.
func ZScore(s Series) Series {
	out := make(Series, len(s))
	if len(s) == 0 {
		return out
	}
	mean := 0.0
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	variance := 0.0
	for _, v := range s {
		d := v - mean
		variance += d * d
	}
	variance /= float64(len(s))
	sd := math.Sqrt(variance)
	if sd == 0 {
		return out
	}
	for i, v := range s {
		out[i] = (v - mean) / sd
	}
	return out
}
