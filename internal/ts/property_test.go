package ts

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: Diff output is non-negative (wrap clamping) and one shorter.
func TestQuickDiffProperties(t *testing.T) {
	f := func(raw []float64) bool {
		s := make(Series, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			s = append(s, v)
		}
		d := Diff(s)
		if len(s) >= 2 && len(d) != len(s)-1 {
			return false
		}
		for _, v := range d {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Diff of a cumulative sum recovers the rates exactly (for
// non-negative rates).
func TestQuickDiffInvertsCumsum(t *testing.T) {
	f := func(raw []float64) bool {
		rates := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			rates = append(rates, math.Abs(math.Mod(v, 1e6)))
		}
		if len(rates) == 0 {
			return true
		}
		counter := make(Series, len(rates)+1)
		for i, r := range rates {
			counter[i+1] = counter[i] + r
		}
		back := Diff(counter)
		for i := range rates {
			tol := 1e-9 * (1 + counter[i+1])
			if math.Abs(back[i]-rates[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// maskedSeries builds a series from raw values (Inf mapped to 0) with
// NaN holes where mask is true.
func maskedSeries(raw []float64, mask []bool) Series {
	s := make(Series, len(raw))
	for i, v := range raw {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			v = 0
		}
		if i < len(mask) && mask[i] {
			s[i] = math.NaN()
		} else {
			s[i] = v
		}
	}
	return s
}

// Property: after Interpolate no NaN remains — whatever the gap layout
// (leading, trailing, interior, or every sample missing) — and the
// finite samples are untouched.
func TestQuickInterpolateTotal(t *testing.T) {
	f := func(raw []float64, mask []bool) bool {
		s := maskedSeries(raw, mask)
		orig := s.Clone()
		Interpolate(s)
		for i := range s {
			if math.IsNaN(s[i]) || math.IsInf(s[i], 0) {
				return false
			}
			if !math.IsNaN(orig[i]) && s[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: HoldLast is total, causal and idempotent — no NaN remains,
// every filled sample equals the nearest finite sample at or before it
// (after leading backfill), finite samples are untouched, and a second
// pass changes nothing.
func TestQuickHoldLastProperties(t *testing.T) {
	f := func(raw []float64, mask []bool) bool {
		s := maskedSeries(raw, mask)
		orig := s.Clone()
		HoldLast(s)
		first := -1
		for i, v := range orig {
			if !math.IsNaN(v) {
				first = i
				break
			}
		}
		for i := range s {
			if math.IsNaN(s[i]) {
				return false
			}
			switch {
			case first == -1:
				if s[i] != 0 {
					return false
				}
			case !math.IsNaN(orig[i]):
				if s[i] != orig[i] {
					return false
				}
			case i < first:
				if s[i] != orig[first] {
					return false
				}
			default:
				// Nearest finite original at or before i.
				j := i
				for math.IsNaN(orig[j]) {
					j--
				}
				if s[i] != orig[j] {
					return false
				}
			}
		}
		cp := s.Clone()
		if n := HoldLast(s); n != 0 {
			return false
		}
		for i := range s {
			if s[i] != cp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Edge cases that matter under telemetry chaos: leading, trailing and
// total gaps.
func TestGapEdgeRepairs(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name         string
		in           Series
		wantInterp   Series
		wantHoldLast Series
	}{
		{"leading", Series{nan, nan, 4, 6}, Series{4, 4, 4, 6}, Series{4, 4, 4, 6}},
		{"trailing", Series{2, 4, nan, nan}, Series{2, 4, 4, 4}, Series{2, 4, 4, 4}},
		{"interior", Series{0, nan, nan, 6}, Series{0, 2, 4, 6}, Series{0, 0, 0, 6}},
		{"all-nan", Series{nan, nan, nan}, Series{0, 0, 0}, Series{0, 0, 0}},
		{"single", Series{nan, 5, nan}, Series{5, 5, 5}, Series{5, 5, 5}},
	}
	for _, c := range cases {
		got := c.in.Clone()
		Interpolate(got)
		for i := range got {
			if got[i] != c.wantInterp[i] {
				t.Errorf("%s: Interpolate = %v, want %v", c.name, got, c.wantInterp)
				break
			}
		}
		got = c.in.Clone()
		HoldLast(got)
		for i := range got {
			if got[i] != c.wantHoldLast[i] {
				t.Errorf("%s: HoldLast = %v, want %v", c.name, got, c.wantHoldLast)
				break
			}
		}
	}
}

// Property: CountNaN agrees with what InterpolateAll ends up filling on
// blocks that have at least one finite sample per series.
func TestQuickCountNaNMatchesFill(t *testing.T) {
	f := func(raw []float64, mask []bool) bool {
		s := maskedSeries(raw, mask)
		if len(s) == 0 {
			return true
		}
		s[0] = 1 // ensure a finite anchor so fills == NaN count
		m := &Multivariate{Metrics: []Series{s}}
		want := CountNaN(m)
		return InterpolateAll(m) == want && CountNaN(m) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: interpolation is idempotent — a second pass changes nothing.
func TestQuickInterpolateIdempotent(t *testing.T) {
	f := func(raw []float64, mask []bool) bool {
		s := make(Series, len(raw))
		for i, v := range raw {
			if math.IsInf(v, 0) {
				v = 0
			}
			if i < len(mask) && mask[i] {
				s[i] = math.NaN()
			} else {
				s[i] = v
			}
		}
		Interpolate(s)
		cp := s.Clone()
		if n := Interpolate(s); n != 0 {
			return false
		}
		for i := range s {
			if s[i] != cp[i] && !(math.IsNaN(s[i]) && math.IsNaN(cp[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
