package ts

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: Diff output is non-negative (wrap clamping) and one shorter.
func TestQuickDiffProperties(t *testing.T) {
	f := func(raw []float64) bool {
		s := make(Series, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			s = append(s, v)
		}
		d := Diff(s)
		if len(s) >= 2 && len(d) != len(s)-1 {
			return false
		}
		for _, v := range d {
			if v < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Diff of a cumulative sum recovers the rates exactly (for
// non-negative rates).
func TestQuickDiffInvertsCumsum(t *testing.T) {
	f := func(raw []float64) bool {
		rates := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			rates = append(rates, math.Abs(math.Mod(v, 1e6)))
		}
		if len(rates) == 0 {
			return true
		}
		counter := make(Series, len(rates)+1)
		for i, r := range rates {
			counter[i+1] = counter[i] + r
		}
		back := Diff(counter)
		for i := range rates {
			tol := 1e-9 * (1 + counter[i+1])
			if math.Abs(back[i]-rates[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interpolation is idempotent — a second pass changes nothing.
func TestQuickInterpolateIdempotent(t *testing.T) {
	f := func(raw []float64, mask []bool) bool {
		s := make(Series, len(raw))
		for i, v := range raw {
			if math.IsInf(v, 0) {
				v = 0
			}
			if i < len(mask) && mask[i] {
				s[i] = math.NaN()
			} else {
				s[i] = v
			}
		}
		Interpolate(s)
		cp := s.Clone()
		if n := Interpolate(s); n != 0 {
			return false
		}
		for i := range s {
			if s[i] != cp[i] && !(math.IsNaN(s[i]) && math.IsNaN(cp[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
