package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzSeeds builds the crafted adversarial inputs the committed corpus
// pins: a valid frame, a torn prefix, a bad checksum, a zero-length
// prefix, and a giant length prefix. The same seeds feed f.Add and the
// testdata corpus regenerator so the two can never drift.
func fuzzSeeds() map[string][]byte {
	valid := AppendRecord(nil, Record{T: -7, Values: []float64{1.25, math.NaN(), 0}})
	torn := append([]byte{}, valid[:len(valid)-5]...)
	badsum := append([]byte{}, valid...)
	badsum[5] ^= 0x40 // flip a checksum bit
	zero := make([]byte, frameHeaderSize)
	giant := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint32(giant[0:4], MaxRecordBytes+1)
	return map[string][]byte{
		"valid":        valid,
		"torn":         torn,
		"bad-checksum": badsum,
		"zero-length":  zero,
		"giant-length": giant,
	}
}

// FuzzWALDecode holds DecodeRecord to its contract on adversarial
// bytes: it never panics, never reads past the input, classifies every
// failure as torn or corrupt, and every successful decode re-encodes to
// a frame that decodes to the same record bitwise.
func FuzzWALDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r, n, err := DecodeRecord(data)
		if err != nil {
			if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n <= frameHeaderSize || n > len(data) {
			t.Fatalf("decode consumed %d bytes of %d", n, len(data))
		}
		re := AppendRecord(nil, r)
		r2, n2, err2 := DecodeRecord(re)
		if err2 != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err2)
		}
		if n2 != len(re) || r2.T != r.T || !sameBits(r2.Values, r.Values) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", r, r2)
		}
	})
}

// TestGenerateFuzzCorpus rewrites the committed seed corpus under
// testdata/fuzz/FuzzWALDecode when UPDATE_FUZZ_CORPUS=1 is set;
// otherwise it verifies the corpus is present and in sync with
// fuzzSeeds.
func TestGenerateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWALDecode")
	update := os.Getenv("UPDATE_FUZZ_CORPUS") == "1"
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for name, seed := range fuzzSeeds() {
		path := filepath.Join(dir, name)
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
		if update {
			if err := os.WriteFile(path, []byte(want), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("corpus seed %s missing (regenerate with UPDATE_FUZZ_CORPUS=1): %v", name, err)
		}
		if string(got) != want {
			t.Fatalf("corpus seed %s stale (regenerate with UPDATE_FUZZ_CORPUS=1)", name)
		}
	}
}
