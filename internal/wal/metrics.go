package wal

import "albadross/internal/obs"

// Write-ahead-log metrics, registered on the default obs registry at
// import time and documented in docs/OBSERVABILITY.md. Counters
// aggregate across every open Log in the process; per-log numbers come
// from Log.Stats.
var (
	appendsTotal = obs.NewCounter(obs.Opts{
		Name: "wal_appends_total",
		Help: "Records journaled across all write-ahead logs.",
		Unit: "records",
	})
	bytesTotal = obs.NewCounter(obs.Opts{
		Name: "wal_bytes_total",
		Help: "Framed bytes appended across all write-ahead logs.",
		Unit: "bytes",
	})
	rotationsTotal = obs.NewCounter(obs.Opts{
		Name: "wal_rotations_total",
		Help: "Segment rotations across all write-ahead logs.",
		Unit: "segments",
	})
	retiredTotal = obs.NewCounter(obs.Opts{
		Name: "wal_retired_total",
		Help: "Segments deleted by retention across all write-ahead logs.",
		Unit: "segments",
	})
	quarantinedTotal = obs.NewCounter(obs.Opts{
		Name: "wal_quarantined_bytes_total",
		Help: "Torn-tail bytes moved to quarantine files during recovery.",
		Unit: "bytes",
	})
	replayedTotal = obs.NewCounter(obs.Opts{
		Name: "wal_replayed_total",
		Help: "Records read back through Log.Scan (recovery and replay).",
		Unit: "records",
	})
)
