package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// writeLog creates a fresh single-segment log of n deterministic
// records and returns its directory plus the framed size of one record.
func writeLog(t *testing.T, n int) (string, int) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := l.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, len(AppendRecord(nil, mkRecord(0)))
}

// TestRecoveryEveryTruncationOffset simulates a torn final write at
// EVERY byte boundary of the last record: recovery must keep every
// complete record, quarantine exactly the torn bytes, and leave the log
// appendable so re-ingest of the lost record resumes without
// double-counting.
func TestRecoveryEveryTruncationOffset(t *testing.T) {
	const n = 5
	probe, frame := writeLog(t, n)
	info, err := os.Stat(filepath.Join(probe, "seg-00000001.wal"))
	if err != nil {
		t.Fatal(err)
	}
	total := info.Size()
	tailStart := total - int64(frame)

	for cut := tailStart; cut <= total; cut++ {
		dir, _ := writeLog(t, n)
		seg := filepath.Join(dir, "seg-00000001.wal")
		if err := os.Truncate(seg, cut); err != nil {
			t.Fatalf("cut %d: truncate: %v", cut, err)
		}
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		wantRecords := uint64(n - 1)
		if cut == total {
			wantRecords = n // clean boundary: nothing torn
		}
		st := l.Stats()
		if st.Records != wantRecords {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, st.Records, wantRecords)
		}
		wantQuarantined := cut - tailStart
		if cut == total || cut == tailStart {
			wantQuarantined = 0 // record boundaries leave no torn bytes
		}
		if st.QuarantinedBytes != wantQuarantined {
			t.Fatalf("cut %d: quarantined %d bytes, want %d", cut, st.QuarantinedBytes, wantQuarantined)
		}
		qpath := filepath.Join(dir, "seg-00000001.quarantine")
		if qinfo, qerr := os.Stat(qpath); wantQuarantined == 0 {
			if qerr == nil {
				t.Fatalf("cut %d: unexpected quarantine file", cut)
			}
		} else if qerr != nil || qinfo.Size() != wantQuarantined {
			t.Fatalf("cut %d: quarantine file: err=%v size=%v want %d", cut, qerr, qinfo, wantQuarantined)
		}

		// Re-ingest: the producer retransmits from the first
		// unacknowledged record. Every record must appear exactly once.
		if cut < total {
			if err := l.Append(mkRecord(n - 1)); err != nil {
				t.Fatalf("cut %d: re-append: %v", cut, err)
			}
		}
		seen := map[int64]int{}
		count := 0
		if err := l.Scan(func(r Record) error {
			if want := mkRecord(count); r.T != want.T || !sameBits(r.Values, want.Values) {
				t.Fatalf("cut %d: record %d mismatch after recovery", cut, count)
			}
			seen[r.T]++
			count++
			return nil
		}); err != nil {
			t.Fatalf("cut %d: scan: %v", cut, err)
		}
		if count != n {
			t.Fatalf("cut %d: %d records after re-ingest, want %d", cut, count, n)
		}
		for ts, c := range seen {
			if c != 1 {
				t.Fatalf("cut %d: record T=%d counted %d times", cut, ts, c)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRecoveryTornHeader tears inside the 8-byte frame header (shorter
// than any decodable prefix) and checks the tail quarantines cleanly.
func TestRecoveryTornHeader(t *testing.T) {
	dir, frame := writeLog(t, 3)
	seg := filepath.Join(dir, "seg-00000001.wal")
	cut := int64(2*frame + 5) // five header bytes of record 3
	if err := os.Truncate(seg, cut); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	st := l.Stats()
	if st.Records != 2 || st.QuarantinedBytes != 5 {
		t.Fatalf("recovered stats %+v, want 2 records / 5 quarantined bytes", st)
	}
}
