package wal

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// mkRecord builds a deterministic record with a few awkward payloads
// (NaN, negative zero, subnormal) so round-trip checks exercise bit
// patterns plain equality would miss.
func mkRecord(i int) Record {
	return Record{
		T: int64(i - 3), // negative timesteps exercise zigzag
		Values: []float64{
			float64(i) * 1.25,
			math.NaN(),
			math.Copysign(0, -1),
			math.SmallestNonzeroFloat64 * float64(i+1),
		},
	}
}

// sameBits compares two rows as IEEE-754 bit patterns.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestRecordRoundTrip(t *testing.T) {
	var buf []byte
	for i := 0; i < 10; i++ {
		buf = AppendRecord(buf, mkRecord(i))
	}
	buf = AppendRecord(buf, Record{T: math.MaxInt64, Values: nil})
	off, decoded := 0, 0
	for off < len(buf) {
		r, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("decode at %d: %v", off, err)
		}
		if decoded < 10 {
			want := mkRecord(decoded)
			if r.T != want.T || !sameBits(r.Values, want.Values) {
				t.Fatalf("record %d mismatch: got %+v want %+v", decoded, r, want)
			}
		} else if r.T != math.MaxInt64 || len(r.Values) != 0 {
			t.Fatalf("sentinel record mismatch: %+v", r)
		}
		off += n
		decoded++
	}
	if decoded != 11 {
		t.Fatalf("decoded %d records, want 11", decoded)
	}
}

func TestLogAppendScan(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if err := l.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := l.Scan(func(r Record) error { got = append(got, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("scanned %d records, want %d", len(got), n)
	}
	for i, r := range got {
		want := mkRecord(i)
		if r.T != want.T || !sameBits(r.Values, want.Values) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	st := l.Stats()
	if st.Records != n || st.Segments != 1 || st.QuarantinedBytes != 0 {
		t.Fatalf("stats %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLogRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	frame := len(AppendRecord(nil, mkRecord(0)))
	// Three records per segment, keep at most two segments.
	l, err := Open(dir, Options{SegmentBytes: int64(3 * frame), Retain: 2})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := l.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments != 2 {
		t.Fatalf("retained %d segments, want 2 (stats %+v)", st.Segments, st)
	}
	if st.Retired == 0 {
		t.Fatalf("expected retired segments, stats %+v", st)
	}
	// The survivors must be the MOST RECENT records, contiguously.
	var ts []int64
	if err := l.Scan(func(r Record) error { ts = append(ts, r.T); return nil }); err != nil {
		t.Fatal(err)
	}
	if int(st.Records) != len(ts) {
		t.Fatalf("stats records %d vs scanned %d", st.Records, len(ts))
	}
	if ts[len(ts)-1] != mkRecord(n-1).T {
		t.Fatalf("last retained record T=%d, want %d", ts[len(ts)-1], mkRecord(n-1).T)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] != ts[i-1]+1 {
			t.Fatalf("retained records not contiguous: %v", ts)
		}
	}
	// No retired files left on disk beyond the retained pair.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("disk holds %d files, want 2: %v", len(entries), entries)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLogReopenAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.Records != 5 || st.QuarantinedBytes != 0 {
		t.Fatalf("recovered stats %+v", st)
	}
	for i := 5; i < 8; i++ {
		if err := l2.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := l2.Scan(func(r Record) error {
		if want := mkRecord(count); r.T != want.T {
			t.Fatalf("record %d has T=%d, want %d", count, r.T, want.T)
		}
		count++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Fatalf("scanned %d records after reopen, want 8", count)
	}
}

func TestOpenRejectsMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := l.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "seg-00000001.wal")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the SECOND record: corruption before the
	// tail must refuse to open, not silently drop the rest of the log.
	frame := len(AppendRecord(nil, mkRecord(0)))
	data[frame+frameHeaderSize+2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over mid-log corruption: err=%v, want ErrCorrupt", err)
	}
}

func TestOpenRejectsTornNonFinalSegment(t *testing.T) {
	dir := t.TempDir()
	frame := len(AppendRecord(nil, mkRecord(0)))
	l, err := Open(dir, Options{SegmentBytes: int64(2 * frame)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail of the FIRST segment; only the final segment may be
	// torn, so this must read as corruption.
	path := filepath.Join(dir, "seg-00000001.wal")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("open over torn non-final segment: err=%v, want ErrCorrupt", err)
	}
}
