// Package wal implements the per-shard append-only write-ahead window
// log: every accepted ingest row is journaled as a checksummed,
// length-prefixed record BEFORE it mutates stream state, so a crashed
// server rebuilds its reordering buffers, window rings and rolling
// feature state bitwise-identically by replaying the log through the
// same stage graph (internal/pipeline.Replay). Logs are segmented with
// bounded retention; recovery quarantines a torn tail on the final
// segment and fails loudly on corruption anywhere else.
package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segPrefix = "seg-"
	segSuffix = ".wal"
	// quarantineSuffix marks the sidecar file holding torn-tail bytes
	// clipped from a segment during recovery.
	quarantineSuffix = ".quarantine"
)

// Options tunes one shard's log. The zero value is usable.
type Options struct {
	// SegmentBytes rotates the active segment once it would exceed this
	// size; 0 defaults to 1 MiB. A record larger than the limit still
	// lands whole in a fresh segment.
	SegmentBytes int64
	// Retain caps how many segments are kept; once exceeded, the oldest
	// segments (and their quarantine sidecars) are deleted. 0 keeps
	// everything. Retention bounds replay: recovery reconstructs state
	// from the retained horizon only.
	Retain int
}

// Stats is a point-in-time accounting snapshot of one log.
type Stats struct {
	// Segments is the number of retained segments, the active one
	// included.
	Segments int `json:"segments"`
	// Bytes is the total framed bytes across retained segments.
	Bytes int64 `json:"bytes"`
	// Records is the total records across retained segments.
	Records uint64 `json:"records"`
	// QuarantinedBytes counts torn-tail bytes clipped at the last Open.
	QuarantinedBytes int64 `json:"quarantined_bytes"`
	// Retired counts segments deleted by retention since Open.
	Retired uint64 `json:"retired"`
	// OldestSeq and CurrentSeq bound the retained segment sequence.
	OldestSeq uint64 `json:"oldest_seq"`
	// CurrentSeq is the sequence number of the active segment.
	CurrentSeq uint64 `json:"current_seq"`
}

// segment is one on-disk log file and its recovered accounting.
type segment struct {
	seq     uint64
	bytes   int64
	records uint64
}

// Log is one shard's write-ahead log. It is not safe for concurrent
// use; the owner (e.g. the server's per-shard ingest lock) serializes
// access, matching the single-writer stream state it journals for.
type Log struct {
	dir         string
	opts        Options
	f           *os.File
	segs        []segment // ascending seq; last is active
	scratch     []byte
	quarantined int64
	retired     uint64
}

// Open opens (or creates) the log rooted at dir and runs recovery:
// every retained segment is scanned and checksum-verified. A torn tail
// on the final segment — the signature of a crash mid-append — is moved
// to a .quarantine sidecar and clipped; a torn or corrupt record
// anywhere else is refused with an error wrapping ErrCorrupt, because
// only the last write in the log can legitimately be incomplete.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}
	if opts.Retain < 0 {
		return nil, fmt.Errorf("wal: negative retention %d", opts.Retain)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create %s: %w", dir, err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(seqs) == 0 {
		seqs = []uint64{1}
	}
	l := &Log{dir: dir, opts: opts}
	for i, seq := range seqs {
		seg, qerr := l.recoverSegment(seq, i == len(seqs)-1)
		if qerr != nil {
			return nil, qerr
		}
		l.segs = append(l.segs, seg)
	}
	cur := l.segs[len(l.segs)-1]
	f, err := os.OpenFile(l.segPath(cur.seq), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open active segment: %w", err)
	}
	l.f = f
	return l, nil
}

// recoverSegment scans one segment, verifying every frame. On the final
// segment a torn tail is quarantined and clipped; elsewhere it is
// corruption.
func (l *Log) recoverSegment(seq uint64, last bool) (segment, error) {
	path := l.segPath(seq)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		data = nil
	} else if err != nil {
		return segment{}, fmt.Errorf("wal: read %s: %w", path, err)
	}
	seg := segment{seq: seq}
	off := 0
	for off < len(data) {
		_, n, derr := DecodeRecord(data[off:])
		if derr == nil {
			off += n
			seg.records++
			continue
		}
		if last && errors.Is(derr, ErrTorn) {
			if qerr := l.quarantine(seq, data[off:]); qerr != nil {
				return segment{}, qerr
			}
			if qerr := os.Truncate(path, int64(off)); qerr != nil {
				return segment{}, fmt.Errorf("wal: clip torn tail of %s: %w", path, qerr)
			}
			break
		}
		if errors.Is(derr, ErrTorn) {
			derr = fmt.Errorf("%w: non-final segment ends mid-record: %v", ErrCorrupt, derr)
		}
		return segment{}, fmt.Errorf("wal: segment %s offset %d: %w", path, off, derr)
	}
	seg.bytes = int64(off)
	return seg, nil
}

// quarantine preserves torn-tail bytes in the segment's sidecar file so
// forensics can inspect what the crash clipped.
func (l *Log) quarantine(seq uint64, tail []byte) error {
	qpath := strings.TrimSuffix(l.segPath(seq), segSuffix) + quarantineSuffix
	qf, err := os.OpenFile(qpath, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open quarantine %s: %w", qpath, err)
	}
	_, werr := qf.Write(tail)
	if cerr := qf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("wal: quarantine tail: %w", werr)
	}
	l.quarantined += int64(len(tail))
	quarantinedTotal.Add(uint64(len(tail)))
	return nil
}

// Append journals one record to the active segment, rotating first if
// the segment is full. It returns once the bytes are handed to the
// kernel; call Sync to force them to stable storage.
func (l *Log) Append(r Record) error {
	l.scratch = AppendRecord(l.scratch[:0], r)
	cur := &l.segs[len(l.segs)-1]
	if cur.bytes > 0 && cur.bytes+int64(len(l.scratch)) > l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
		cur = &l.segs[len(l.segs)-1]
	}
	n, err := l.f.Write(l.scratch)
	cur.bytes += int64(n)
	if err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	cur.records++
	appendsTotal.Inc()
	bytesTotal.Add(uint64(n))
	return nil
}

// rotate seals the active segment, starts the next one, and applies
// retention.
func (l *Log) rotate() error {
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: seal segment: %w", err)
	}
	next := l.segs[len(l.segs)-1].seq + 1
	f, err := os.OpenFile(l.segPath(next), os.O_WRONLY|os.O_APPEND|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment %d: %w", next, err)
	}
	l.f = f
	l.segs = append(l.segs, segment{seq: next})
	rotationsTotal.Inc()
	for l.opts.Retain > 0 && len(l.segs) > l.opts.Retain {
		old := l.segs[0]
		if err := os.Remove(l.segPath(old.seq)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("wal: retire segment %d: %w", old.seq, err)
		}
		qpath := strings.TrimSuffix(l.segPath(old.seq), segSuffix) + quarantineSuffix
		if err := os.Remove(qpath); err != nil && !errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("wal: retire quarantine %d: %w", old.seq, err)
		}
		l.segs = l.segs[1:]
		l.retired++
		retiredTotal.Inc()
	}
	return nil
}

// Sync forces journaled bytes to stable storage.
func (l *Log) Sync() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Close seals the active segment. The log must not be used afterwards.
func (l *Log) Close() error {
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Scan streams every retained record, oldest segment first, through fn;
// a non-nil error from fn stops the scan. Recovery at Open has already
// verified the retained frames, so any decode failure here reports
// external tampering since Open.
func (l *Log) Scan(fn func(Record) error) error {
	for _, seg := range l.segs {
		data, err := os.ReadFile(l.segPath(seg.seq))
		if errors.Is(err, fs.ErrNotExist) && seg.bytes == 0 {
			continue
		}
		if err != nil {
			return fmt.Errorf("wal: scan segment %d: %w", seg.seq, err)
		}
		off := 0
		for off < len(data) {
			r, n, derr := DecodeRecord(data[off:])
			if derr != nil {
				return fmt.Errorf("wal: scan segment %d offset %d: %w", seg.seq, off, derr)
			}
			off += n
			replayedTotal.Inc()
			if err := fn(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats reports the log's current accounting.
func (l *Log) Stats() Stats {
	st := Stats{
		Segments:         len(l.segs),
		QuarantinedBytes: l.quarantined,
		Retired:          l.retired,
		OldestSeq:        l.segs[0].seq,
		CurrentSeq:       l.segs[len(l.segs)-1].seq,
	}
	for _, seg := range l.segs {
		st.Bytes += seg.bytes
		st.Records += seg.records
	}
	return st
}

// Dir returns the directory the log lives in.
func (l *Log) Dir() string { return l.dir }

// segPath names the on-disk file of a segment; fixed-width sequence
// numbers keep lexicographic and numeric order aligned.
func (l *Log) segPath(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%08d%s", segPrefix, seq, segSuffix))
}

// listSegments returns the segment sequence numbers present in dir, in
// ascending order.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		seq, perr := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 10, 64)
		if perr != nil || seq == 0 {
			return nil, fmt.Errorf("wal: unrecognized segment file %s in %s", name, dir)
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for i := 1; i < len(seqs); i++ {
		if seqs[i] == seqs[i-1] {
			return nil, fmt.Errorf("wal: duplicate segment sequence %d in %s", seqs[i], dir)
		}
	}
	return seqs, nil
}
