package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Record is one journaled ingest row: a claimed timestep and the raw
// reading delivered for it. Values are stored as IEEE-754 bit patterns,
// so NaN payloads (missing metrics) and negative zeros round-trip
// bitwise — the property WAL replay needs to reconstruct stream state
// exactly.
type Record struct {
	// T is the claimed timestep of the reading.
	T int64
	// Values is the raw metric row (NaN marks missing metrics).
	Values []float64
}

// Frame layout, little-endian:
//
//	uint32  payload length (bytes; > 0, <= MaxRecordBytes)
//	uint32  CRC-32C (Castagnoli) of the payload
//	payload
//
// Payload layout:
//
//	byte    format version (recordVersion)
//	varint  T (zigzag)
//	uvarint len(Values)
//	8 bytes float64 bits per value, little-endian
const (
	frameHeaderSize = 8
	recordVersion   = 1
)

// MaxRecordBytes bounds a decodable payload: a length prefix past it is
// rejected as corrupt instead of trusted, so a bit-flipped length can
// never make recovery attempt a multi-gigabyte read. At 8 bytes per
// value this still leaves room for rows of ~128k metrics — two orders
// of magnitude above Eclipse's 806.
const MaxRecordBytes = 1 << 20

// castagnoli is the CRC-32C table shared by encode and decode.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTorn reports a frame cut short by a crash mid-write: the bytes
// present are a prefix of a record, not a corrupt one. Recovery treats
// everything from a torn frame onward as the quarantinable tail.
var ErrTorn = errors.New("wal: torn record (incomplete frame)")

// ErrCorrupt reports a frame that is structurally invalid — zero or
// oversized length prefix, checksum mismatch, or an undecodable
// payload. A torn write that garbled already-written bytes also lands
// here; recovery handles both identically.
var ErrCorrupt = errors.New("wal: corrupt record")

// AppendRecord appends the framed encoding of r to dst and returns the
// extended slice.
func AppendRecord(dst []byte, r Record) []byte {
	payload := 1 + binary.MaxVarintLen64 + binary.MaxVarintLen64 + 8*len(r.Values)
	start := len(dst)
	dst = append(dst, make([]byte, frameHeaderSize+payload)...)
	p := dst[start+frameHeaderSize:]
	p[0] = recordVersion
	n := 1
	n += binary.PutVarint(p[n:], r.T)
	n += binary.PutUvarint(p[n:], uint64(len(r.Values)))
	for _, v := range r.Values {
		binary.LittleEndian.PutUint64(p[n:], math.Float64bits(v))
		n += 8
	}
	dst = dst[:start+frameHeaderSize+n]
	p = dst[start:]
	binary.LittleEndian.PutUint32(p[0:4], uint32(n))
	binary.LittleEndian.PutUint32(p[4:8], crc32.Checksum(p[frameHeaderSize:frameHeaderSize+n], castagnoli))
	return dst
}

// DecodeRecord decodes the first frame of b. It returns the record and
// the total frame size consumed. Errors wrap ErrTorn when b ends inside
// the frame (a crash-truncated tail) and ErrCorrupt for structurally
// invalid frames; it never reads past len(b) and never panics on
// adversarial input (FuzzWALDecode holds it to that).
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < frameHeaderSize {
		return Record{}, 0, fmt.Errorf("%w: %d header bytes of %d", ErrTorn, len(b), frameHeaderSize)
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if length == 0 {
		return Record{}, 0, fmt.Errorf("%w: zero-length payload", ErrCorrupt)
	}
	if length > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: length prefix %d exceeds the %d-byte record bound", ErrCorrupt, length, MaxRecordBytes)
	}
	if uint32(len(b)-frameHeaderSize) < length {
		return Record{}, 0, fmt.Errorf("%w: %d payload bytes of %d", ErrTorn, len(b)-frameHeaderSize, length)
	}
	payload := b[frameHeaderSize : frameHeaderSize+int(length)]
	if sum := crc32.Checksum(payload, castagnoli); sum != binary.LittleEndian.Uint32(b[4:8]) {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	if payload[0] != recordVersion {
		return Record{}, 0, fmt.Errorf("%w: unknown record version %d", ErrCorrupt, payload[0])
	}
	p := payload[1:]
	t, n := binary.Varint(p)
	if n <= 0 {
		return Record{}, 0, fmt.Errorf("%w: bad timestep varint", ErrCorrupt)
	}
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 {
		return Record{}, 0, fmt.Errorf("%w: bad value-count varint", ErrCorrupt)
	}
	p = p[n:]
	if uint64(len(p)) != 8*count {
		return Record{}, 0, fmt.Errorf("%w: %d value bytes for %d values", ErrCorrupt, len(p), count)
	}
	values := make([]float64, count)
	for i := range values {
		values[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return Record{T: t, Values: values}, frameHeaderSize + int(length), nil
}
