package hpas

import (
	"math"
	"strings"
	"testing"

	"albadross/internal/telemetry"
)

func metricByName(schema []telemetry.Metric, substr string) telemetry.Metric {
	for _, m := range schema {
		if strings.Contains(m.Name, substr) {
			return m
		}
	}
	panic("metric not found: " + substr)
}

func TestNewKnownAndUnknown(t *testing.T) {
	for _, n := range Names() {
		inj, err := New(n)
		if err != nil {
			t.Fatalf("New(%q): %v", n, err)
		}
		if inj.Name() != n {
			t.Fatalf("Name() = %q, want %q", inj.Name(), n)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown anomaly should error")
	}
	// Case-insensitive lookup.
	if _, err := New("MemLeak"); err != nil {
		t.Fatalf("case-insensitive lookup failed: %v", err)
	}
}

func TestAllAndLabels(t *testing.T) {
	if len(All()) != 5 {
		t.Fatalf("All() = %d injectors, want 5", len(All()))
	}
	labels := Labels()
	if labels[0] != telemetry.HealthyLabel || len(labels) != 6 {
		t.Fatalf("Labels() = %v", labels)
	}
}

func TestZeroIntensityIsNearIdentity(t *testing.T) {
	schema := telemetry.BuildSchema(27)
	for _, inj := range All() {
		for _, m := range schema {
			for _, tt := range []int{0, 50, 199} {
				mul, add := inj.Modulate(m, tt, 200, 0)
				if math.Abs(mul-1) > 1e-12 || math.Abs(add) > 1e-12 {
					t.Fatalf("%s on %s at zero intensity: mul=%v add=%v", inj.Name(), m.Name, mul, add)
				}
			}
		}
	}
}

func TestIntensityMonotonicity(t *testing.T) {
	// Higher intensity never produces a weaker perturbation magnitude.
	schema := telemetry.BuildSchema(27)
	for _, inj := range All() {
		for _, m := range schema {
			prev := 0.0
			for _, in := range []float64{0.02, 0.1, 0.5, 1.0} {
				mul, add := inj.Modulate(m, 150, 200, in)
				mag := math.Abs(mul-1) + math.Abs(add)
				if mag+1e-12 < prev {
					t.Fatalf("%s on %s: perturbation shrank from %v to %v at intensity %v",
						inj.Name(), m.Name, prev, mag, in)
				}
				prev = mag
			}
		}
	}
}

func TestCPUOccupyFootprint(t *testing.T) {
	schema := telemetry.BuildSchema(27)
	inj, _ := New(CPUOccupy)
	user := metricByName(schema, "cpu.user")
	idle := metricByName(schema, "cpu.idle")
	net := metricByName(schema, "network.rx_packets")
	_, addU := inj.Modulate(user, 10, 100, 1)
	if addU <= 0 {
		t.Fatal("cpuoccupy should add user time")
	}
	mulI, _ := inj.Modulate(idle, 10, 100, 1)
	if mulI >= 1 {
		t.Fatal("cpuoccupy should reduce idle time")
	}
	mulN, addN := inj.Modulate(net, 10, 100, 1)
	if mulN != 1 || addN != 0 {
		t.Fatal("cpuoccupy must not touch network metrics")
	}
}

func TestMemLeakGrowsOverTime(t *testing.T) {
	schema := telemetry.BuildSchema(27)
	inj, _ := New(MemLeak)
	active := metricByName(schema, "meminfo.active")
	free := metricByName(schema, "meminfo.free")
	_, addEarly := inj.Modulate(active, 0, 100, 1)
	_, addLate := inj.Modulate(active, 99, 100, 1)
	if !(addLate > addEarly) {
		t.Fatalf("leak should grow: early=%v late=%v", addEarly, addLate)
	}
	mulFreeEarly, _ := inj.Modulate(free, 0, 100, 1)
	mulFreeLate, _ := inj.Modulate(free, 99, 100, 1)
	if !(mulFreeLate < mulFreeEarly) {
		t.Fatal("free memory should drain over time")
	}
	if mulFreeLate <= 0 {
		t.Fatal("free memory multiplier must stay positive")
	}
}

func TestDialOscillates(t *testing.T) {
	schema := telemetry.BuildSchema(27)
	inj, _ := New(Dial)
	freq := metricByName(schema, "cpu.freq")
	seen := map[float64]bool{}
	for tt := 0; tt < 120; tt++ {
		mul, _ := inj.Modulate(freq, tt, 120, 1)
		seen[mul] = true
	}
	if len(seen) < 2 {
		t.Fatal("dial should oscillate between at least two levels")
	}
	lo := 2.0
	for v := range seen {
		if v < lo {
			lo = v
		}
	}
	if lo >= 1 {
		t.Fatal("dial should sometimes reduce frequency")
	}
}

func TestMemBWAndCacheCopyTargetCray(t *testing.T) {
	schema := telemetry.BuildSchema(27)
	bw := metricByName(schema, "cray.mem_bw")
	miss := metricByName(schema, "cray.cache_miss")
	injBW, _ := New(MemBW)
	injCC, _ := New(CacheCopy)
	mul, _ := injBW.Modulate(bw, 10, 100, 1)
	if mul < 2 {
		t.Fatalf("membw should strongly inflate mem_bw, mul=%v", mul)
	}
	mul, _ = injCC.Modulate(miss, 10, 100, 1)
	if mul < 2 {
		t.Fatalf("cachecopy should strongly inflate cache_miss, mul=%v", mul)
	}
	// The two anomalies must be distinguishable: their strongest metric
	// differs.
	mulBWonMiss, _ := injBW.Modulate(miss, 10, 100, 1)
	mulCConBW, _ := injCC.Modulate(bw, 10, 100, 1)
	if mulBWonMiss >= mul || mulCConBW >= 2 {
		t.Fatal("membw and cachecopy footprints overlap too much")
	}
}

func TestEndToEndInjection(t *testing.T) {
	// Inject each anomaly into a run and confirm the victim node differs
	// from a healthy node more than two healthy nodes differ from each
	// other.
	sys := telemetry.Volta(27)
	for _, inj := range All() {
		cfg := telemetry.RunConfig{
			App: sys.App("Kripke"), Input: 0, Nodes: 3, Steps: 300,
			Injector: inj, Intensity: 1, AnomalyNode: 0, Seed: 21,
		}
		samples, err := sys.GenerateRun(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dist := func(a, b int) float64 {
			d := 0.0
			for mi := range sys.Metrics {
				sa, sb := samples[a].Data.Metrics[mi], samples[b].Data.Metrics[mi]
				var ma, mb, na, nb float64
				for _, v := range sa {
					if !math.IsNaN(v) {
						ma += v
						na++
					}
				}
				for _, v := range sb {
					if !math.IsNaN(v) {
						mb += v
						nb++
					}
				}
				ma, mb = ma/na, mb/nb
				rel := math.Abs(ma-mb) / (math.Abs(ma) + math.Abs(mb) + 1e-12)
				d += rel
			}
			return d
		}
		anomalousDist := dist(0, 1)
		healthyDist := dist(1, 2)
		if !(anomalousDist > healthyDist) {
			t.Fatalf("%s: anomalous distance %v not above healthy-healthy %v",
				inj.Name(), anomalousDist, healthyDist)
		}
	}
}
