// Package hpas reimplements the observable behaviour of the HPC
// Performance Anomaly Suite (HPAS, Ates et al., ICPP 2019), the synthetic
// anomaly generator the paper injects next to applications (Sec. IV-C,
// Table III).
//
// Real HPAS runs stressor processes (arithmetic loops, cache thrashing,
// uncached writes, leaking allocators, CPU-frequency dialing) on a victim
// node. The classifiers never see the stressors themselves — only their
// footprint in node telemetry. This package therefore implements each
// anomaly as a telemetry.Injector that perturbs the metric groups the real
// stressor perturbs, with the same qualitative time behaviour:
//
//   - cpuoccupy: a steady CPU-hogging process — user time up, idle down,
//     power up, slight cache traffic.
//   - cachecopy: cache read/write contention — cache-miss and write-back
//     counters inflate, some extra user time.
//   - membw: memory-bandwidth contention via uncached writes — memory
//     bandwidth and write-back counters inflate strongly, page activity up.
//   - memleak: an allocator that increasingly allocates and fills memory —
//     active/anon memory ramp up over the run, free memory ramps down,
//     page-fault rate rises.
//   - dial: CPU frequency oscillation — a square-wave modulation of CPU
//     time, frequency, and power.
//
// Intensity in (0, 1] scales the perturbation amplitude, mirroring the
// suite's intensity settings (Volta uses 2-100%).
package hpas

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"albadross/internal/telemetry"
)

// Anomaly class labels, as they appear in the paper's figures.
const (
	CPUOccupy = "cpuoccupy"
	CacheCopy = "cachecopy"
	MemBW     = "membw"
	MemLeak   = "memleak"
	Dial      = "dial"
)

// Names returns all anomaly labels in canonical order.
func Names() []string {
	return []string{CPUOccupy, CacheCopy, MemBW, MemLeak, Dial}
}

// Labels returns the full diagnosis label set: healthy plus all anomalies,
// in canonical order (healthy first).
func Labels() []string {
	return append([]string{telemetry.HealthyLabel}, Names()...)
}

// New returns the injector with the given name, or an error for an unknown
// anomaly.
func New(name string) (telemetry.Injector, error) {
	switch strings.ToLower(name) {
	case CPUOccupy:
		return cpuOccupy{}, nil
	case CacheCopy:
		return cacheCopy{}, nil
	case MemBW:
		return memBW{}, nil
	case MemLeak:
		return memLeak{}, nil
	case Dial:
		return dial{}, nil
	default:
		known := Names()
		sort.Strings(known)
		return nil, fmt.Errorf("hpas: unknown anomaly %q (known: %s)", name, strings.Join(known, ", "))
	}
}

// All returns one injector per anomaly, in canonical order.
func All() []telemetry.Injector {
	out := make([]telemetry.Injector, 0, len(Names()))
	for _, n := range Names() {
		inj, err := New(n)
		if err != nil {
			panic(err) // unreachable: Names() only returns known anomalies
		}
		out = append(out, inj)
	}
	return out
}

// response maps the configured intensity setting to the injectors'
// effective perturbation scale. Real HPAS stressors are separate
// processes whose footprint grows sub-linearly with the intensity knob (a
// "2%" stressor still steals scheduler slots, cache lines and DRAM
// cycles), so injectors use intensity^0.2: 2% -> 0.46, 10% -> 0.63,
// 100% -> 1.
func response(intensity float64) float64 {
	if intensity <= 0 {
		return 0
	}
	return math.Pow(intensity, 0.2)
}

// kindOf extracts the metric kind ("user", "free", ...) from an LDMS-style
// metric name "subsystem.kind[.instance]".
func kindOf(m telemetry.Metric) string {
	parts := strings.Split(m.Name, ".")
	if len(parts) < 2 {
		return m.Name
	}
	return parts[1]
}

// identity is the no-perturbation return.
func identity() (float64, float64) { return 1, 0 }

// cpuOccupy models a CPU-intensive interloper process performing
// arithmetic operations (Table III row 1).
type cpuOccupy struct{}

func (cpuOccupy) Name() string { return CPUOccupy }

func (cpuOccupy) Modulate(m telemetry.Metric, t, steps int, intensity float64) (float64, float64) {
	intensity = response(intensity)
	switch m.Subsystem {
	case telemetry.CPU:
		switch kindOf(m) {
		case "user":
			return 1, 0.9 * intensity // steal cycles: user time up
		case "idle":
			return 1 - 0.85*intensity, 0 // idle headroom shrinks
		case "sys":
			return 1 + 0.6*intensity, 0 // scheduler overhead
		case "freq":
			return 1, 0 // frequency steady
		default:
			return 1 + 0.05*intensity, 0
		}
	case telemetry.Cray:
		if kindOf(m) == "power" {
			return 1, 0.45 * intensity // package power rises
		}
		return 1 + 0.08*intensity, 0
	default:
		return identity()
	}
}

// cacheCopy models cache read & write contention (Table III row 2).
type cacheCopy struct{}

func (cacheCopy) Name() string { return CacheCopy }

func (cacheCopy) Modulate(m telemetry.Metric, t, steps int, intensity float64) (float64, float64) {
	intensity = response(intensity)
	switch m.Subsystem {
	case telemetry.Cray:
		switch kindOf(m) {
		case "cache_miss":
			return 1 + 2.2*intensity, 0.3 * intensity
		case "wb_flits":
			return 1 + 1.4*intensity, 0.2 * intensity
		case "power":
			return 1, 0.12 * intensity
		default:
			return 1 + 0.3*intensity, 0
		}
	case telemetry.CPU:
		switch kindOf(m) {
		case "user":
			return 1, 0.15 * intensity
		case "idle":
			return 1 - 0.2*intensity, 0
		default:
			return identity()
		}
	default:
		return identity()
	}
}

// memBW models memory-bandwidth contention through uncached memory writes
// (Table III row 3).
type memBW struct{}

func (memBW) Name() string { return MemBW }

func (memBW) Modulate(m telemetry.Metric, t, steps int, intensity float64) (float64, float64) {
	intensity = response(intensity)
	switch m.Subsystem {
	case telemetry.Cray:
		switch kindOf(m) {
		case "mem_bw":
			return 1 + 2.8*intensity, 0.5 * intensity
		case "wb_flits":
			return 1 + 2.0*intensity, 0.3 * intensity
		case "power":
			return 1, 0.18 * intensity
		default:
			return 1 + 0.2*intensity, 0
		}
	case telemetry.VMStat:
		switch kindOf(m) {
		case "nr_writeback", "pgpgout":
			return 1 + 1.2*intensity, 0.1 * intensity
		default:
			return 1 + 0.3*intensity, 0
		}
	case telemetry.CPU:
		if kindOf(m) == "idle" {
			return 1 - 0.15*intensity, 0
		}
		return identity()
	default:
		return identity()
	}
}

// memLeak models a process that increasingly allocates and fills memory
// (Table III row 4). Its footprint grows linearly over the run.
type memLeak struct{}

func (memLeak) Name() string { return MemLeak }

func (memLeak) Modulate(m telemetry.Metric, t, steps int, intensity float64) (float64, float64) {
	intensity = response(intensity)
	frac := 0.0
	if steps > 1 {
		frac = float64(t) / float64(steps-1) // leak grows with time
	}
	grow := intensity * frac
	switch m.Subsystem {
	case telemetry.Memory:
		switch kindOf(m) {
		case "free":
			return math.Max(0.05, 1-0.8*grow), 0 // free memory drains
		case "active", "anon":
			return 1, 0.7 * grow // resident set climbs
		case "cached":
			return math.Max(0.2, 1-0.3*grow), 0 // page cache evicted
		default:
			return 1 + 0.1*grow, 0
		}
	case telemetry.VMStat:
		if kindOf(m) == "pgfault" {
			return 1 + 0.8*intensity, 0.05 * grow
		}
		return 1 + 0.2*grow, 0
	default:
		return identity()
	}
}

// dialPeriod is the square-wave period of the dial anomaly in samples.
const dialPeriod = 30

// dial models CPU-frequency dialing: the victim core's frequency (and with
// it effective compute throughput and power) oscillates between nominal
// and a reduced setting.
type dial struct{}

func (dial) Name() string { return Dial }

func (dial) Modulate(m telemetry.Metric, t, steps int, intensity float64) (float64, float64) {
	intensity = response(intensity)
	// Square wave: low half / high half of each period.
	low := (t/(dialPeriod/2))%2 == 0
	depth := 0.6 * intensity
	if !low {
		depth = 0
	}
	switch m.Subsystem {
	case telemetry.CPU:
		switch kindOf(m) {
		case "freq":
			return 1 - depth, 0
		case "user":
			return 1 - 0.8*depth, 0 // less work retired per second
		case "idle":
			return 1 + 0.6*depth, 0
		default:
			return 1 - 0.3*depth, 0
		}
	case telemetry.Cray:
		if kindOf(m) == "power" {
			return 1 - 0.7*depth, 0
		}
		return 1 - 0.2*depth, 0
	default:
		return identity()
	}
}
