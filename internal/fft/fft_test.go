package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownValues(t *testing.T) {
	// FFT of [1,0,0,0] is all ones.
	out := FFTReal([]float64{1, 0, 0, 0})
	for i, v := range out {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
	// FFT of constant c over n points: [n*c, 0, ..., 0].
	out = FFTReal([]float64{2, 2, 2, 2})
	if cmplx.Abs(out[0]-8) > 1e-12 {
		t.Fatalf("DC bin = %v, want 8", out[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(out[i]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", i, out[i])
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 2, 3, 5, 8, 12, 16, 17, 31, 64, 100} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := FFT(x)
		for k := 0; k < n; k++ {
			var want complex128
			for j := 0; j < n; j++ {
				ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
				want += x[j] * cmplx.Exp(complex(0, ang))
			}
			if cmplx.Abs(got[k]-want) > 1e-8*float64(n) {
				t.Fatalf("n=%d k=%d: got %v want %v", n, k, got[k], want)
			}
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 7, 16, 33, 128, 250} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		back := IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(back[i]-x[i]) > 1e-9 {
				t.Fatalf("n=%d roundtrip mismatch at %d: %v vs %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestQuickParseval(t *testing.T) {
	// Parseval: sum|x|^2 == (1/n) sum|X|^2.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e3 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		spec := FFTReal(xs)
		var timeE, freqE float64
		for _, v := range xs {
			timeE += v * v
		}
		for _, c := range spec {
			freqE += real(c)*real(c) + imag(c)*imag(c)
		}
		freqE /= float64(len(xs))
		return math.Abs(timeE-freqE) <= 1e-6*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPeriodogramPeak(t *testing.T) {
	// A pure sinusoid at 10 Hz sampled at 100 Hz should put its power in
	// the 10 Hz bin.
	const fs = 100.0
	const f0 = 10.0
	n := 200
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * f0 * float64(i) / fs)
	}
	freqs, psd := Periodogram(x, fs)
	best := 0
	for i := range psd {
		if psd[i] > psd[best] {
			best = i
		}
	}
	if math.Abs(freqs[best]-f0) > 0.51 {
		t.Fatalf("peak at %v Hz, want %v", freqs[best], f0)
	}
}

func TestWelchPeakAndLength(t *testing.T) {
	const fs = 1.0
	const f0 = 0.1
	n := 512
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, n)
	for i := range x {
		x[i] = 3*math.Sin(2*math.Pi*f0*float64(i)/fs) + 0.1*rng.NormFloat64()
	}
	freqs, psd := Welch(x, fs, 128)
	if len(freqs) != 65 || len(psd) != 65 {
		t.Fatalf("welch lengths = %d,%d want 65", len(freqs), len(psd))
	}
	best := 0
	for i := range psd {
		if psd[i] > psd[best] {
			best = i
		}
	}
	if math.Abs(freqs[best]-f0) > 0.01 {
		t.Fatalf("welch peak at %v, want %v", freqs[best], f0)
	}
}

func TestWelchShortSeries(t *testing.T) {
	x := []float64{1, 2, 3}
	freqs, psd := Welch(x, 1, 128)
	if len(freqs) == 0 || len(psd) == 0 {
		t.Fatal("short series should still yield one segment")
	}
	if f, p := Welch(nil, 1, 64); f != nil || p != nil {
		t.Fatal("empty input should return nil")
	}
}

func TestSpectralMoments(t *testing.T) {
	freqs := []float64{0, 1, 2, 3, 4}
	psd := []float64{0, 0, 1, 0, 0} // all power at 2 Hz
	c, v, _, _ := SpectralMoments(freqs, psd)
	if math.Abs(c-2) > 1e-12 || math.Abs(v) > 1e-12 {
		t.Fatalf("centroid=%v var=%v, want 2, 0", c, v)
	}
	c, _, _, _ = SpectralMoments(freqs, []float64{0, 0, 0, 0, 0})
	if !math.IsNaN(c) {
		t.Fatal("zero spectrum should give NaN centroid")
	}
}

func TestHannWindow(t *testing.T) {
	w := HannWindow(5)
	if w[0] != 0 || w[4] != 0 {
		t.Fatalf("hann endpoints = %v, %v, want 0", w[0], w[4])
	}
	if math.Abs(w[2]-1) > 1e-12 {
		t.Fatalf("hann midpoint = %v, want 1", w[2])
	}
	if HannWindow(1)[0] != 1 {
		t.Fatal("1-point hann should be [1]")
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkWelch4096(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, 4096)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Welch(x, 1, 256)
	}
}
