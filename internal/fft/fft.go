// Package fft implements the discrete Fourier transform substrate needed by
// the TSFRESH-style feature extractor: an iterative radix-2 FFT, a Bluestein
// chirp-z fallback for arbitrary lengths, real-input helpers, and Welch's
// method for power-spectral-density estimation.
//
// The implementation is self-contained (stdlib only) and deterministic. All
// transforms are unnormalized in the forward direction; the inverse divides
// by n, so IFFT(FFT(x)) == x up to floating-point error.
package fft

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the forward discrete Fourier transform of x. The input is not
// modified. Power-of-two lengths use the iterative radix-2 algorithm;
// other lengths fall back to Bluestein's algorithm. An empty input returns
// an empty slice.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		radix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT returns the inverse discrete Fourier transform of x, normalized by
// 1/n so that IFFT(FFT(x)) reproduces x.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := make([]complex128, n)
	copy(out, x)
	if n&(n-1) == 0 {
		radix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// FFTReal transforms a real-valued series and returns the full complex
// spectrum of length len(x).
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// radix2 performs an in-place iterative Cooley-Tukey FFT. len(a) must be a
// power of two. When inverse is true the conjugate twiddles are used (the
// caller applies the 1/n normalization).
func radix2(a []complex128, inverse bool) {
	n := len(a)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wStep := cmplx.Exp(complex(0, step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				even := a[start+k]
				odd := a[start+k+half] * w
				a[start+k] = even + odd
				a[start+k+half] = even - odd
				w *= wStep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution, which is
// evaluated with a power-of-two FFT of length >= 2n-1.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign * i*pi*k^2/n). Use k^2 mod 2n to keep the
	// argument small for long series.
	w := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		w[k] = cmplx.Exp(complex(0, sign*math.Pi*float64(kk)/float64(n)))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * w[k]
		b[k] = cmplx.Conj(w[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(w[k])
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invM := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * invM * w[k]
	}
	return out
}

// Periodogram returns the one-sided power spectral density estimate of a
// real series sampled at fs Hz, using a single un-windowed FFT. The
// returned slices hold frequencies (length n/2+1) and matching densities.
func Periodogram(x []float64, fs float64) (freqs, psd []float64) {
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	spec := FFTReal(x)
	half := n/2 + 1
	freqs = make([]float64, half)
	psd = make([]float64, half)
	scale := 1 / (fs * float64(n))
	for k := 0; k < half; k++ {
		freqs[k] = fs * float64(k) / float64(n)
		p := real(spec[k])*real(spec[k]) + imag(spec[k])*imag(spec[k])
		p *= scale
		// One-sided: double everything except DC and (for even n) Nyquist.
		if k != 0 && !(n%2 == 0 && k == half-1) {
			p *= 2
		}
		psd[k] = p
	}
	return freqs, psd
}

// HannWindow returns the n-point Hann window.
func HannWindow(n int) []float64 {
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	for i := 0; i < n; i++ {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
	}
	return w
}

// Welch estimates the one-sided power spectral density of a real series
// sampled at fs Hz using Welch's method: the series is split into
// Hann-windowed segments of length segLen with 50% overlap, each segment's
// modified periodogram is computed, and the periodograms are averaged.
// Segments are mean-detrended, matching scipy.signal.welch's default.
// If the series is shorter than segLen, a single shortened segment is used.
func Welch(x []float64, fs float64, segLen int) (freqs, psd []float64) {
	n := len(x)
	if n == 0 || segLen <= 0 {
		return nil, nil
	}
	if segLen > n {
		segLen = n
	}
	step := segLen / 2
	if step == 0 {
		step = 1
	}
	win := HannWindow(segLen)
	winPower := 0.0
	for _, w := range win {
		winPower += w * w
	}
	half := segLen/2 + 1
	acc := make([]float64, half)
	segments := 0
	seg := make([]float64, segLen)
	for start := 0; start+segLen <= n; start += step {
		copy(seg, x[start:start+segLen])
		// Detrend (constant) then window.
		mean := 0.0
		for _, v := range seg {
			mean += v
		}
		mean /= float64(segLen)
		for i := range seg {
			seg[i] = (seg[i] - mean) * win[i]
		}
		spec := FFTReal(seg)
		scale := 1 / (fs * winPower)
		for k := 0; k < half; k++ {
			p := (real(spec[k])*real(spec[k]) + imag(spec[k])*imag(spec[k])) * scale
			if k != 0 && !(segLen%2 == 0 && k == half-1) {
				p *= 2
			}
			acc[k] += p
		}
		segments++
	}
	if segments == 0 {
		return nil, nil
	}
	freqs = make([]float64, half)
	psd = make([]float64, half)
	for k := 0; k < half; k++ {
		freqs[k] = fs * float64(k) / float64(segLen)
		psd[k] = acc[k] / float64(segments)
	}
	return freqs, psd
}

// SpectralMoments summarizes a PSD with its centroid, variance, skewness
// and kurtosis over frequency, the aggregates tsfresh derives from spectra.
// A zero-power spectrum yields NaNs.
func SpectralMoments(freqs, psd []float64) (centroid, variance, skew, kurt float64) {
	total := 0.0
	for _, p := range psd {
		total += p
	}
	nan := math.NaN()
	if total == 0 || len(psd) == 0 || len(freqs) != len(psd) {
		return nan, nan, nan, nan
	}
	for i, p := range psd {
		centroid += freqs[i] * p / total
	}
	for i, p := range psd {
		d := freqs[i] - centroid
		variance += d * d * p / total
	}
	if variance == 0 {
		return centroid, variance, nan, nan
	}
	sd := math.Sqrt(variance)
	for i, p := range psd {
		d := (freqs[i] - centroid) / sd
		skew += d * d * d * p / total
		kurt += d * d * d * d * p / total
	}
	return centroid, variance, skew, kurt
}
