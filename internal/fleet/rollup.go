package fleet

import (
	"sort"
	"sync"

	"albadross/internal/stream"
)

// RollupConfig tunes the fleet-wide rollup.
type RollupConfig struct {
	// Recent is the per-node ring of most recent diagnoses the anomaly
	// score is computed over (default 16).
	Recent int
	// HealthyLabel is the diagnosis label that counts as healthy
	// (default "healthy"). Abstentions also count as non-anomalous.
	HealthyLabel string
}

// Rollup is the fleet-wide serving state: per-node recent-diagnosis
// rings and per-app aggregates, maintained incrementally on every
// diagnosis and ranked by an indexed binary max-heap so TopK answers
// from the heap top without scanning the fleet. All methods are safe
// for concurrent use; Observe is O(log nodes), TopK is O(k log k).
type Rollup struct {
	cfg RollupConfig

	mu    sync.Mutex
	nodes map[int]*nodeRoll
	heap  []*nodeRoll // indexed max-heap by (anomalous fraction, node id)
	apps  map[string]*appRoll
	cands []int32 // TopK candidate-walk scratch (heap positions)
}

// nodeRoll is one node's incrementally maintained rollup state.
type nodeRoll struct {
	node      int
	app       string
	ring      []bool // true = anomalous, newest at (pos-1+len)%len
	ringLen   int    // filled prefix while warming up
	ringPos   int
	recent    int // anomalous count inside the ring
	windows   int // lifetime diagnoses
	anomalies int // lifetime anomalous diagnoses
	last      stream.Diagnosis
	heapIdx   int
}

// appRoll aggregates one application's footprint across the fleet.
type appRoll struct {
	nodes     int // nodes currently attributed to the app
	windows   int
	anomalies int
	labels    map[string]int
}

// NewRollup builds an empty rollup.
func NewRollup(cfg RollupConfig) *Rollup {
	if cfg.Recent <= 0 {
		cfg.Recent = 16
	}
	if cfg.HealthyLabel == "" {
		cfg.HealthyLabel = "healthy"
	}
	return &Rollup{
		cfg:   cfg,
		nodes: make(map[int]*nodeRoll),
		apps:  make(map[string]*appRoll),
	}
}

// anomalous classifies one diagnosis for the rollup score.
func (r *Rollup) anomalous(d stream.Diagnosis) bool {
	return !d.Abstained && d.Label != r.cfg.HealthyLabel
}

// Observe folds one node diagnosis into the rollup: the node's ring and
// lifetime counters, its app's aggregates, and its heap position. app
// may be empty to keep the node's previous attribution.
//
//albacheck:hotpath
func (r *Rollup) Observe(node int, app string, d stream.Diagnosis) {
	anom := r.anomalous(d)
	r.mu.Lock()
	nr := r.nodes[node]
	if nr == nil {
		nr = r.addNode(node)
	}
	if app != "" && app != nr.app {
		r.reattribute(nr, app)
	}
	if nr.ringLen < len(nr.ring) {
		nr.ringLen++
	} else if nr.ring[nr.ringPos] {
		nr.recent--
	}
	nr.ring[nr.ringPos] = anom
	nr.ringPos++
	if nr.ringPos == len(nr.ring) {
		nr.ringPos = 0
	}
	nr.windows++
	nr.last = d
	if anom {
		nr.recent++
		nr.anomalies++
	}
	if ar := r.apps[nr.app]; ar != nil {
		ar.windows++
		if anom {
			ar.anomalies++
		}
		ar.labels[d.Label]++
	}
	r.fix(nr.heapIdx)
	r.mu.Unlock()
	rollupObserved.Inc()
}

// addNode registers a new node at the heap bottom. Caller holds mu.
//
//albacheck:coldpath one-time per-node state construction, amortized over the node's lifetime of observations
func (r *Rollup) addNode(node int) *nodeRoll {
	nr := &nodeRoll{node: node, ring: make([]bool, r.cfg.Recent), heapIdx: len(r.heap)}
	r.nodes[node] = nr
	r.heap = append(r.heap, nr)
	rollupHeapSize.Set(float64(len(r.heap)))
	return nr
}

// reattribute moves a node's app assignment. Past windows stay with the
// app that produced them; only the node count moves. Caller holds mu.
//
//albacheck:coldpath app attribution changes at job boundaries, not per diagnosis
func (r *Rollup) reattribute(nr *nodeRoll, app string) {
	if old := r.apps[nr.app]; old != nil {
		old.nodes--
	}
	ar := r.apps[app]
	if ar == nil {
		ar = &appRoll{labels: make(map[string]int)}
		r.apps[app] = ar
	}
	ar.nodes++
	nr.app = app
}

// before is the heap ordering: higher anomalous fraction first, node id
// ascending on ties, so the ranking is total and deterministic. The
// fraction compare cross-multiplies to stay in integers.
func (r *Rollup) before(a, b *nodeRoll) bool {
	av, bv := a.recent*b.ringLen, b.recent*a.ringLen
	if av != bv {
		return av > bv
	}
	return a.node < b.node
}

// fix restores the heap invariant around one changed entry.
func (r *Rollup) fix(i int) {
	if !r.up(i) {
		r.down(i)
	}
}

// up sifts entry i toward the root, reporting whether it moved.
func (r *Rollup) up(i int) bool {
	moved := false
	for i > 0 {
		p := (i - 1) / 2
		if !r.before(r.heap[i], r.heap[p]) {
			break
		}
		r.swap(i, p)
		i = p
		moved = true
	}
	return moved
}

// down sifts entry i toward the leaves.
func (r *Rollup) down(i int) {
	for {
		l, rt := 2*i+1, 2*i+2
		best := i
		if l < len(r.heap) && r.before(r.heap[l], r.heap[best]) {
			best = l
		}
		if rt < len(r.heap) && r.before(r.heap[rt], r.heap[best]) {
			best = rt
		}
		if best == i {
			return
		}
		r.swap(i, best)
		i = best
	}
}

// swap exchanges two heap entries, keeping their back-indices current.
func (r *Rollup) swap(i, j int) {
	r.heap[i], r.heap[j] = r.heap[j], r.heap[i]
	r.heap[i].heapIdx = i
	r.heap[j].heapIdx = j
}

// NodeSummary is one node's rollup entry as served by /api/fleet/topk.
type NodeSummary struct {
	Node int    `json:"node"`
	App  string `json:"app,omitempty"`
	// Score is the anomalous fraction of the node's recent-diagnosis
	// ring — the ranking key.
	Score           float64 `json:"score"`
	AnomalousRecent int     `json:"anomalous_recent"`
	RecentWindow    int     `json:"recent_window"`
	Windows         int     `json:"windows_total"`
	Anomalies       int     `json:"anomalies_total"`
	LastLabel       string  `json:"last_label"`
	LastConfidence  float64 `json:"last_confidence"`
	LastWindowEnd   int     `json:"last_window_end"`
	LastAbstained   bool    `json:"last_abstained,omitempty"`
}

// summarize renders one node's entry. Caller holds mu.
func summarize(nr *nodeRoll) NodeSummary {
	s := NodeSummary{
		Node:            nr.node,
		App:             nr.app,
		AnomalousRecent: nr.recent,
		RecentWindow:    nr.ringLen,
		Windows:         nr.windows,
		Anomalies:       nr.anomalies,
		LastLabel:       nr.last.Label,
		LastConfidence:  nr.last.Confidence,
		LastWindowEnd:   nr.last.WindowEnd,
		LastAbstained:   nr.last.Abstained,
	}
	if nr.ringLen > 0 {
		s.Score = float64(nr.recent) / float64(nr.ringLen)
	}
	return s
}

// TopK returns the k most anomalous nodes, most anomalous first (ties
// by ascending node id). It walks heap candidates — push the root, pop
// the best, push its children — so the cost depends only on k (at most
// 2k+1 candidates are ever considered), never on fleet size; the fleet
// is not scanned.
func (r *Rollup) TopK(k int) []NodeSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	if k > len(r.heap) {
		k = len(r.heap)
	}
	if k <= 0 {
		return nil
	}
	out := make([]NodeSummary, 0, k)
	r.cands = r.cands[:0]
	r.cands = append(r.cands, 0)
	for len(out) < k {
		// Pop the best candidate heap position.
		best := 0
		for i := 1; i < len(r.cands); i++ {
			if r.before(r.heap[r.cands[i]], r.heap[r.cands[best]]) {
				best = i
			}
		}
		p := r.cands[best]
		r.cands[best] = r.cands[len(r.cands)-1]
		r.cands = r.cands[:len(r.cands)-1]
		out = append(out, summarize(r.heap[p]))
		if l := 2*p + 1; int(l) < len(r.heap) {
			r.cands = append(r.cands, l)
		}
		if rt := 2*p + 2; int(rt) < len(r.heap) {
			r.cands = append(r.cands, rt)
		}
	}
	return out
}

// AppSummary is one application's fleet footprint as served by
// /api/fleet/apps.
type AppSummary struct {
	App       string         `json:"app"`
	Nodes     int            `json:"nodes"`
	Windows   int            `json:"windows_total"`
	Anomalies int            `json:"anomalies_total"`
	Labels    map[string]int `json:"labels"`
}

// Apps returns the per-app breakdown, sorted by app name.
func (r *Rollup) Apps() []AppSummary {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]AppSummary, 0, len(r.apps))
	for app, ar := range r.apps {
		labels := make(map[string]int, len(ar.labels))
		for k, v := range ar.labels {
			labels[k] = v
		}
		out = append(out, AppSummary{
			App: app, Nodes: ar.nodes,
			Windows: ar.windows, Anomalies: ar.anomalies,
			Labels: labels,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].App < out[j].App })
	return out
}

// Tracked reports how many nodes the rollup currently ranks.
func (r *Rollup) Tracked() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.heap)
}
