package fleet

import (
	"fmt"
	"math"
	"strconv"
)

// Values is one reading's metric vector on the bulk wire. JSON cannot
// carry NaN, so missing cells travel as null — the same convention as
// /api/ingest — but decoded with a hand-rolled scanner instead of a
// []*float64 detour, so a reused Row keeps its backing array across
// batches.
type Values []float64

// MarshalJSON encodes missing (NaN) cells as null.
func (v Values) MarshalJSON() ([]byte, error) {
	out := make([]byte, 0, 1+len(v)*8)
	out = append(out, '[')
	for i, f := range v {
		if i > 0 {
			out = append(out, ',')
		}
		if math.IsNaN(f) {
			out = append(out, "null"...)
		} else {
			out = strconv.AppendFloat(out, f, 'g', -1, 64)
		}
	}
	return append(out, ']'), nil
}

// UnmarshalJSON decodes a numbers-and-nulls array, reusing the
// receiver's backing array when it has capacity.
func (v *Values) UnmarshalJSON(b []byte) error {
	out := (*v)[:0]
	i := skipSpace(b, 0)
	if i >= len(b) || b[i] != '[' {
		return fmt.Errorf("fleet: values must be an array, got %q", truncate(b))
	}
	i = skipSpace(b, i+1)
	if i < len(b) && b[i] == ']' {
		*v = out
		return nil
	}
	for {
		i = skipSpace(b, i)
		start := i
		for i < len(b) && b[i] != ',' && b[i] != ']' {
			i++
		}
		if i >= len(b) {
			return fmt.Errorf("fleet: unterminated values array %q", truncate(b))
		}
		tok := trimSpace(b[start:i])
		if string(tok) == "null" {
			out = append(out, math.NaN())
		} else {
			f, err := strconv.ParseFloat(string(tok), 64)
			if err != nil {
				return fmt.Errorf("fleet: values cell %q: %w", tok, err)
			}
			out = append(out, f)
		}
		if b[i] == ']' {
			*v = out
			return nil
		}
		i++ // past the comma
	}
}

// skipSpace advances past JSON whitespace.
func skipSpace(b []byte, i int) int {
	for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\n' || b[i] == '\r') {
		i++
	}
	return i
}

// trimSpace strips JSON whitespace from both ends of a token.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\n' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\n' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// truncate bounds an error-message excerpt of a malformed payload.
func truncate(b []byte) string {
	if len(b) > 32 {
		b = b[:32]
	}
	return string(b)
}

// Row is one timestamped reading of one node inside an interleaved
// multi-node bulk batch.
type Row struct {
	// Node is the logical node id the reading belongs to.
	Node int `json:"node"`
	// App optionally names the application running on the node when the
	// reading was taken; the fleet rollup's per-app breakdown follows the
	// latest non-empty attribution.
	App string `json:"app,omitempty"`
	// T is the claimed timestep (per-node clock).
	T int `json:"t"`
	// Values is the reading; NaN cells mark missing metrics.
	Values Values `json:"values"`
}

// NodeBatch is one node's rows from one bulk batch, in arrival order.
// The Rows slice references demux scratch and is valid until the next
// Split on the same Demux.
type NodeBatch struct {
	Node  int
	Shard int
	// App is the last non-empty app attribution seen in the batch.
	App  string
	Rows []Row
}

// ShardBatch groups the node batches one shard worker receives from one
// bulk request, nodes in first-arrival order.
type ShardBatch struct {
	Shard int
	Nodes []NodeBatch
}

// Demux splits interleaved multi-node row batches into per-node groups
// bucketed by owning shard. All scratch (the node index, the grouped
// row backing, the per-shard buckets) is retained and reused across
// Split calls, so a warmed demux splits a batch without allocating —
// the property the BENCH_6 alloc gate pins. Not safe for concurrent
// use; pool instances instead.
type Demux struct {
	router  *Router
	groupOf map[int]int32 // node id -> index into groups
	groups  []NodeBatch
	counts  []int32 // rows per group (pass 1)
	cursors []int32 // fill cursor per group (pass 2)
	flat    []Row   // grouped rows, one contiguous region per group
	byShard [][]int32
	ordered []NodeBatch // groups rearranged shard-contiguously
	out     []ShardBatch
}

// NewDemux builds a demux over one router.
func NewDemux(router *Router) *Demux {
	return &Demux{
		router:  router,
		groupOf: make(map[int]int32, 64),
		byShard: make([][]int32, router.Shards()),
	}
}

// Split demultiplexes one bulk batch. The result (and every NodeBatch
// inside it) is valid until the next Split; row Values share backing
// with the input rows.
//
//albacheck:hotpath
func (d *Demux) Split(rows []Row) []ShardBatch {
	clear(d.groupOf)
	d.groups = d.groups[:0]
	d.counts = d.counts[:0]
	for s := range d.byShard {
		d.byShard[s] = d.byShard[s][:0]
	}

	// Pass 1: assign groups (routing each distinct node once) and count
	// rows per group.
	for i := range rows {
		r := &rows[i]
		g, ok := d.groupOf[r.Node]
		if !ok {
			g = int32(len(d.groups))
			d.groupOf[r.Node] = g
			d.groups = appendGroup(d.groups, NodeBatch{Node: r.Node, Shard: d.router.Shard(r.Node)})
			d.counts = appendCount(d.counts, 0)
		}
		d.counts[g]++
		if r.App != "" {
			d.groups[g].App = r.App
		}
	}

	// Pass 2: copy rows into one contiguous region per group.
	d.flat = growRows(d.flat, len(rows))
	d.cursors = growInt32(d.cursors, len(d.groups))
	off := int32(0)
	for g := range d.groups {
		d.cursors[g] = off
		off += d.counts[g]
	}
	for i := range rows {
		g := d.groupOf[rows[i].Node]
		d.flat[d.cursors[g]] = rows[i]
		d.cursors[g]++
	}
	off = 0
	for g := range d.groups {
		d.groups[g].Rows = d.flat[off : off+d.counts[g] : off+d.counts[g]]
		off += d.counts[g]
	}

	// Bucket groups by shard, then lay the node batches out
	// shard-contiguously. ordered is pre-grown to its final length first:
	// the out entries alias subranges of it, so it must not reallocate
	// mid-loop.
	for g := range d.groups {
		s := d.groups[g].Shard
		d.byShard[s] = appendInt32(d.byShard[s], int32(g))
	}
	d.ordered = growGroups(d.ordered, len(d.groups))[:0]
	d.out = growShardBatches(d.out, len(d.byShard))[:0]
	for s := range d.byShard {
		if len(d.byShard[s]) == 0 {
			continue
		}
		start := len(d.ordered)
		for _, g := range d.byShard[s] {
			d.ordered = append(d.ordered, d.groups[g])
		}
		d.out = append(d.out, ShardBatch{Shard: s, Nodes: d.ordered[start:len(d.ordered):len(d.ordered)]})
	}
	return d.out
}

// appendGroup/appendCount/appendInt32 wrap the growing appends so the
// amortized reallocation is a traversal barrier for the hot-path alloc
// scan; once the scratch has seen its steady-state batch shape every
// call reuses capacity.
//
//albacheck:coldpath amortized scratch growth; steady-state Split reuses every backing array
func appendGroup(s []NodeBatch, v NodeBatch) []NodeBatch { return append(s, v) }

//albacheck:coldpath amortized scratch growth; steady-state Split reuses every backing array
func appendCount(s []int32, v int32) []int32 { return append(s, v) }

//albacheck:coldpath amortized scratch growth; steady-state Split reuses every backing array
func appendInt32(s []int32, v int32) []int32 { return append(s, v) }

// growRows returns a slice of length n, reusing capacity when it can.
//
//albacheck:coldpath amortized scratch growth; steady-state Split reuses every backing array
func growRows(s []Row, n int) []Row {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]Row, n)
}

//albacheck:coldpath amortized scratch growth; steady-state Split reuses every backing array
func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

//albacheck:coldpath amortized scratch growth; steady-state Split reuses every backing array
func growGroups(s []NodeBatch, n int) []NodeBatch {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]NodeBatch, n)
}

//albacheck:coldpath amortized scratch growth; steady-state Split reuses every backing array
func growShardBatches(s []ShardBatch, n int) []ShardBatch {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]ShardBatch, n)
}
