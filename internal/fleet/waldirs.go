package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// nodeDirPrefix names per-node WAL directories under a fleet WAL root.
const nodeDirPrefix = "node-"

// NodeWALDir is the canonical per-node write-ahead-log directory under
// a fleet WAL root. Node factories that journal should open their logs
// here so ListNodeWALs can find them again after a crash.
func NodeWALDir(root string, node int) string {
	return filepath.Join(root, fmt.Sprintf("%s%06d", nodeDirPrefix, node))
}

// ListNodeWALs scans a fleet WAL root for per-node log directories and
// returns their node ids, ascending — the Preload set for a recovering
// coordinator. A missing root is an empty fleet, not an error.
func ListNodeWALs(root string) ([]int, error) {
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var nodes []int
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), nodeDirPrefix) {
			continue
		}
		id, err := strconv.Atoi(strings.TrimPrefix(e.Name(), nodeDirPrefix))
		if err != nil {
			continue // not a node directory
		}
		nodes = append(nodes, id)
	}
	sort.Ints(nodes)
	return nodes, nil
}
