// Package fleet multiplexes many logical nodes onto a bounded set of
// shard workers — the Eclipse-scale ingest path ROADMAP item 1 calls
// for. The paper's production deployment monitors 1488 nodes × ~806
// metrics at 1 Hz; holding one goroutine, one chain and one WAL per
// node would be wasteful and unbounded, so the fleet layer routes node
// ids to a fixed shard count with rendezvous (highest-random-weight)
// hashing, demultiplexes interleaved multi-node LDMS batches into
// per-node row groups with pooled scratch, fans the groups to
// shard-owned workers over bounded queues with explicit back-pressure,
// and maintains an incrementally updated fleet rollup (top-k anomalous
// nodes, per-app breakdown) behind a bounded indexed heap so the
// serving endpoints never scan the whole fleet.
//
// Each shard worker owns its nodes' stage chains and write-ahead logs
// exclusively (single-writer, exactly the /api/ingest locking
// discipline), so pipeline journaling and Replay semantics are
// untouched: per-node state is bitwise identical no matter how many
// shards the fleet is folded onto.
package fleet

import (
	"fmt"

	"albadross/internal/runner"
)

// Router deterministically assigns node ids to shards with rendezvous
// (highest-random-weight) hashing: every (node, shard) pair gets a
// pseudo-random weight from the splitmix64 mix behind runner.CellSeed,
// and the node lands on the shard with the highest weight. The
// assignment is a pure function of (node, shard count) — the same node
// set always folds onto the same shards, restarts included — and
// changing the shard count moves only ~1/shards of the nodes (the
// property plain modulo hashing lacks).
type Router struct {
	shards int
}

// NewRouter builds a router over a positive shard count.
func NewRouter(shards int) (*Router, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("fleet: shard count must be positive, got %d", shards)
	}
	return &Router{shards: shards}, nil
}

// Shards reports the shard count the router folds nodes onto.
func (r *Router) Shards() int { return r.shards }

// Shard returns the owning shard for one node id. Negative node ids are
// valid (the mix treats the id as an opaque 64-bit coordinate).
//
//albacheck:hotpath
func (r *Router) Shard(node int) int {
	best, bestW := 0, uint64(0)
	for s := 0; s < r.shards; s++ {
		w := uint64(runner.CellSeed(int64(node), s))
		// Strict > keeps ties on the lowest shard index, so the argmax is
		// total and deterministic.
		if s == 0 || w > bestW {
			best, bestW = s, w
		}
	}
	return best
}
