package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"albadross/internal/obs"
	"albadross/internal/pipeline"
	"albadross/internal/stream"
	"albadross/internal/wal"
)

// NodeStream is one node's ingest state as built by the Config.NewNode
// factory: a stage chain and (optionally) the write-ahead log it
// journals to. The owning shard worker is the only goroutine that ever
// touches it, so the pipeline's single-writer contract — and with it
// WAL journaling and Replay semantics — carries over unchanged from the
// per-shard /api/ingest path.
type NodeStream struct {
	Chain *pipeline.Chain
	Log   *wal.Log // nil when journaling is off
}

// Config assembles a fleet coordinator.
type Config struct {
	// Shards is the worker count node ids are folded onto.
	Shards int
	// QueueDepth bounds each shard's task queue; a bulk batch whose
	// shard queue is full has that shard's rows shed with back-pressure
	// (default 32).
	QueueDepth int
	// MaxNodesPerShard bounds each worker's node map; rows for new nodes
	// beyond the bound are rejected (default 1024). The whole fleet
	// therefore holds at most Shards*MaxNodesPerShard chains.
	MaxNodesPerShard int
	// Metrics is the expected reading width; rows of any other width are
	// rejected before demultiplexing. 0 disables the check.
	Metrics int
	// NewNode builds one node's chain (and WAL) on first routing. It is
	// called from shard worker goroutines and must be safe for
	// concurrent calls with distinct node ids. The provided sink MUST be
	// the chain's Sink (directly or tee'd) — it feeds the fleet rollup
	// and the coordinator's diagnosis accounting.
	NewNode func(node int, sink pipeline.Sink) (*NodeStream, error)
	// Rollup, when non-nil, receives every emitted diagnosis.
	Rollup *Rollup
	// Preload instantiates these nodes before traffic starts — the
	// restart path: the factory replays each node's retained WAL, so a
	// recovered coordinator resumes with bitwise-identical state.
	Preload []int
}

// Coordinator routes bulk multi-node batches to shard workers. Offer is
// synchronous — it returns once every enqueued shard task has been
// executed and journaled — and sheds instead of blocking when a shard's
// bounded queue is full, so overload degrades by explicit partial
// accept, never by stalling the whole fleet behind one slow shard.
type Coordinator struct {
	cfg     Config
	router  *Router
	workers []*shardWorker
	dpool   sync.Pool

	mu     sync.RWMutex // guards closed against in-flight enqueues
	closed bool
	wg     sync.WaitGroup

	nodeCount atomic.Int64
	offered   atomic.Int64
	accepted  atomic.Int64
	shed      atomic.Int64
	rejected  atomic.Int64
}

// shardWorker owns one shard: its task queue and its nodes' chains.
type shardWorker struct {
	c      *Coordinator
	id     int
	tasks  chan *task
	nodes  map[int]*nodeState
	queued atomic.Int32
	taskNs atomic.Int64 // EWMA of task execution wall time

	depth *obs.Gauge
	sheds *obs.Counter
}

// nodeState pairs one node's stream with its rollup sink.
type nodeState struct {
	ns   *NodeStream
	sink *nodeSink
}

// nodeSink delivers one node's diagnoses to the rollup with the node's
// current app attribution. Only the owning shard worker touches it.
type nodeSink struct {
	r       *Rollup
	node    int
	app     string
	emitted int
}

// Emit folds one diagnosis into the fleet rollup.
func (k *nodeSink) Emit(d stream.Diagnosis) error {
	k.emitted++
	fleetDiagnoses.Inc()
	if k.r != nil {
		k.r.Observe(k.node, k.app, d)
	}
	return nil
}

// task is one unit of shard work: either a demuxed slice of node
// batches with its result slot, or a control closure (quiesce,
// inventory) when fn is set.
type task struct {
	nodes []NodeBatch
	res   *ShardResult
	fn    func(w *shardWorker)
	wg    *sync.WaitGroup
}

// ShardResult is one shard's accounting for one bulk batch.
type ShardResult struct {
	Shard int `json:"shard"`
	// Nodes is how many distinct nodes the batch addressed on this shard.
	Nodes int `json:"nodes"`
	// Offered is the batch's row count routed to this shard.
	Offered int `json:"offered"`
	// Accepted rows entered (and, with a WAL, were fsynced into) their
	// node chains.
	Accepted int `json:"accepted"`
	// Rejected rows were refused permanently (chain errors, node
	// capacity); retrying them is pointless.
	Rejected int `json:"rejected,omitempty"`
	// Shed rows were dropped because the shard queue was full; retry
	// after the Retry-After hint.
	Shed int `json:"shed,omitempty"`
	// Error carries the last permanent-rejection cause, when any.
	Error string `json:"error,omitempty"`
}

// BatchResult is the coordinator's accounting for one bulk batch:
// Offered == Accepted + Rejected + Shed, always.
type BatchResult struct {
	Offered  int           `json:"offered"`
	Accepted int           `json:"accepted"`
	Rejected int           `json:"rejected,omitempty"`
	Shed     int           `json:"shed,omitempty"`
	Nodes    int           `json:"nodes"`
	PerShard []ShardResult `json:"per_shard,omitempty"`
	// RetryAfter advises when shed rows are worth re-offering — an
	// estimate of the fullest shed shard draining its queue. Zero when
	// nothing was shed.
	RetryAfter time.Duration `json:"-"`
}

// NewCoordinator validates the configuration, preloads any recovered
// nodes, and starts one worker goroutine per shard.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.NewNode == nil {
		return nil, errors.New("fleet: NewNode factory is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	if cfg.MaxNodesPerShard <= 0 {
		cfg.MaxNodesPerShard = 1024
	}
	router, err := NewRouter(cfg.Shards)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, router: router}
	c.dpool.New = func() interface{} { return NewDemux(router) }
	c.workers = make([]*shardWorker, cfg.Shards)
	for s := 0; s < cfg.Shards; s++ {
		lbl := strconv.Itoa(s)
		c.workers[s] = &shardWorker{
			c: c, id: s,
			tasks: make(chan *task, cfg.QueueDepth),
			nodes: make(map[int]*nodeState),
			depth: fleetQueueDepth.With(lbl),
			sheds: fleetShed.With(lbl),
		}
	}
	for _, node := range cfg.Preload {
		w := c.workers[router.Shard(node)]
		if _, err := w.node(node); err != nil {
			err = fmt.Errorf("fleet: preloading node %d: %w", node, err)
			if cerr := c.closeNodes(); cerr != nil {
				err = fmt.Errorf("%w (unwinding already-preloaded nodes: %v)", err, cerr)
			}
			return nil, err
		}
	}
	for _, w := range c.workers {
		c.wg.Add(1)
		go w.run()
	}
	return c, nil
}

// Router exposes the coordinator's node→shard assignment.
func (c *Coordinator) Router() *Router { return c.router }

// run executes the worker loop until the task channel closes.
func (w *shardWorker) run() {
	defer w.c.wg.Done()
	for t := range w.tasks {
		w.depth.Set(float64(w.queued.Add(-1)))
		if t.fn != nil {
			t.fn(w)
			t.wg.Done()
			continue
		}
		start := time.Now()
		w.exec(t)
		w.observe(time.Since(start))
		t.wg.Done()
	}
}

// observe folds one task's wall time into the worker's EWMA — the basis
// of the Retry-After estimate.
func (w *shardWorker) observe(d time.Duration) {
	prev := w.taskNs.Load()
	if prev == 0 {
		w.taskNs.Store(int64(d))
		return
	}
	w.taskNs.Store(prev + (int64(d)-prev)/8)
}

// node returns (building on first use) one node's state.
func (w *shardWorker) node(id int) (*nodeState, error) {
	if st, ok := w.nodes[id]; ok {
		return st, nil
	}
	if len(w.nodes) >= w.c.cfg.MaxNodesPerShard {
		return nil, fmt.Errorf("fleet: shard %d is at its %d-node capacity", w.id, w.c.cfg.MaxNodesPerShard)
	}
	sink := &nodeSink{r: w.c.cfg.Rollup, node: id}
	ns, err := w.c.cfg.NewNode(id, sink)
	if err != nil {
		return nil, err
	}
	if ns == nil || ns.Chain == nil {
		return nil, fmt.Errorf("fleet: NewNode(%d) returned no chain", id)
	}
	st := &nodeState{ns: ns, sink: sink}
	w.nodes[id] = st
	fleetNodes.Set(float64(w.c.nodeCount.Add(1)))
	return st, nil
}

// exec pushes one task's node batches through their chains, syncing
// each journaled node once per task.
func (w *shardWorker) exec(t *task) {
	for i := range t.nodes {
		nb := &t.nodes[i]
		st, err := w.node(nb.Node)
		if err != nil {
			t.res.Rejected += len(nb.Rows)
			t.res.Error = err.Error()
			continue
		}
		if nb.App != "" {
			st.sink.app = nb.App
		}
		accepted := 0
		for r := range nb.Rows {
			row := &nb.Rows[r]
			if err := st.ns.Chain.PushAt(row.T, row.Values); err != nil {
				t.res.Error = err.Error()
				continue
			}
			accepted++
		}
		if st.ns.Log != nil && accepted > 0 {
			if err := st.ns.Log.Sync(); err != nil {
				// The rows are journaled and applied; only the durability
				// point moved. Surface it without un-accepting them.
				t.res.Error = err.Error()
			}
		}
		t.res.Accepted += accepted
		t.res.Rejected += len(nb.Rows) - accepted
	}
}

// Offer demultiplexes one bulk batch, fans it to the shard workers, and
// waits for every enqueued task to finish. Shards whose queue is full
// at enqueue time shed their whole slice of the batch — accounted in
// the result, advised by RetryAfter — while the other shards proceed at
// full throughput.
func (c *Coordinator) Offer(rows []Row) (*BatchResult, error) {
	if len(rows) == 0 {
		return nil, errors.New("fleet: empty batch")
	}
	fleetBatchRows.Observe(float64(len(rows)))
	res := &BatchResult{Offered: len(rows)}

	// Width screening: demux and the workers assume schema-width rows.
	valid := rows
	if c.cfg.Metrics > 0 {
		bad := 0
		for i := range rows {
			if len(rows[i].Values) != c.cfg.Metrics {
				bad++
			}
		}
		if bad > 0 {
			res.Rejected = bad
			filtered := make([]Row, 0, len(rows)-bad)
			for i := range rows {
				if len(rows[i].Values) == c.cfg.Metrics {
					filtered = append(filtered, rows[i])
				}
			}
			valid = filtered
			if len(valid) == 0 {
				c.offered.Add(int64(res.Offered))
				c.rejected.Add(int64(res.Rejected))
				fleetRejected.Add(uint64(res.Rejected))
				return res, nil
			}
		}
	}

	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, errors.New("fleet: coordinator is closed")
	}
	d := c.dpool.Get().(*Demux)
	batches := d.Split(valid)

	var wg sync.WaitGroup
	tasks := make([]task, len(batches))
	res.PerShard = make([]ShardResult, len(batches))
	retryNs := int64(0)
	for i := range batches {
		sb := &batches[i]
		sr := &res.PerShard[i]
		sr.Shard = sb.Shard
		sr.Nodes = len(sb.Nodes)
		for n := range sb.Nodes {
			sr.Offered += len(sb.Nodes[n].Rows)
		}
		res.Nodes += sr.Nodes
		w := c.workers[sb.Shard]
		tasks[i] = task{nodes: sb.Nodes, res: sr, wg: &wg}
		wg.Add(1)
		select {
		case w.tasks <- &tasks[i]:
			w.depth.Set(float64(w.queued.Add(1)))
		default:
			wg.Done()
			sr.Shed = sr.Offered
			w.sheds.Add(uint64(sr.Shed))
			if est := w.drainEstimate(); est > retryNs {
				retryNs = est
			}
		}
	}
	c.mu.RUnlock()
	wg.Wait()

	for i := range res.PerShard {
		res.Accepted += res.PerShard[i].Accepted
		res.Rejected += res.PerShard[i].Rejected
		res.Shed += res.PerShard[i].Shed
	}
	if res.Shed > 0 {
		res.RetryAfter = clampRetry(time.Duration(retryNs))
	}
	c.offered.Add(int64(res.Offered))
	c.accepted.Add(int64(res.Accepted))
	c.rejected.Add(int64(res.Rejected))
	c.shed.Add(int64(res.Shed))
	fleetRows.Add(uint64(res.Accepted))
	fleetRejected.Add(uint64(res.Rejected))

	// Workers are done with the demux scratch the tasks referenced.
	c.dpool.Put(d)
	return res, nil
}

// drainEstimate guesses how long this shard needs to empty its queue.
func (w *shardWorker) drainEstimate() int64 {
	return w.taskNs.Load() * int64(w.queued.Load()+1)
}

// clampRetry bounds the Retry-After advice to a sane operational range.
func clampRetry(d time.Duration) time.Duration {
	const lo, hi = 50 * time.Millisecond, 5 * time.Second
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// Quiesce blocks until every task accepted before the call has been
// executed (queues drain FIFO, so a barrier task per shard suffices).
// Unlike Offer it waits for queue room instead of shedding.
func (c *Coordinator) Quiesce() error {
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return errors.New("fleet: coordinator is closed")
	}
	var wg sync.WaitGroup
	barriers := make([]task, len(c.workers))
	for i, w := range c.workers {
		barriers[i] = task{fn: func(*shardWorker) {}, wg: &wg}
		wg.Add(1)
		w.tasks <- &barriers[i]
		w.depth.Set(float64(w.queued.Add(1)))
	}
	c.mu.RUnlock()
	wg.Wait()
	return nil
}

// NodeInfo is one node's state snapshot from Nodes.
type NodeInfo struct {
	Node      int          `json:"node"`
	Shard     int          `json:"shard"`
	App       string       `json:"app,omitempty"`
	Stats     stream.Stats `json:"stats"`
	Committed int          `json:"committed"`
	Pending   int          `json:"pending"`
	Emitted   int          `json:"emitted"`
	WAL       *wal.Stats   `json:"wal,omitempty"`
}

// Nodes snapshots every node's chain accounting, sorted by node id. It
// runs inside the shard workers (a control task per shard), so it waits
// behind any queued ingest work — an inventory and test helper, not a
// health-probe primitive (Stats is the cheap path).
func (c *Coordinator) Nodes() ([]NodeInfo, error) {
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, errors.New("fleet: coordinator is closed")
	}
	var wg sync.WaitGroup
	perShard := make([][]NodeInfo, len(c.workers))
	tasks := make([]task, len(c.workers))
	for i, w := range c.workers {
		i := i
		tasks[i] = task{wg: &wg, fn: func(w *shardWorker) {
			perShard[i] = w.inventory()
		}}
		wg.Add(1)
		w.tasks <- &tasks[i]
		w.depth.Set(float64(w.queued.Add(1)))
	}
	c.mu.RUnlock()
	wg.Wait()
	var out []NodeInfo
	for _, part := range perShard {
		out = append(out, part...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out, nil
}

// inventory renders the worker's node map. Runs on the worker
// goroutine.
func (w *shardWorker) inventory() []NodeInfo {
	out := make([]NodeInfo, 0, len(w.nodes))
	for id, st := range w.nodes {
		info := NodeInfo{
			Node: id, Shard: w.id, App: st.sink.app,
			Stats:     st.ns.Chain.Stats(),
			Committed: st.ns.Chain.Committed(),
			Pending:   st.ns.Chain.PendingDepth(),
			Emitted:   st.sink.emitted,
		}
		if st.ns.Log != nil {
			ls := st.ns.Log.Stats()
			info.WAL = &ls
		}
		out = append(out, info)
	}
	return out
}

// Stats is the coordinator's cheap cumulative accounting — atomics
// only, safe to read from health probes even while every worker is
// wedged.
type Stats struct {
	Shards   int   `json:"shards"`
	Nodes    int   `json:"nodes"`
	Offered  int64 `json:"offered"`
	Accepted int64 `json:"accepted"`
	Rejected int64 `json:"rejected"`
	Shed     int64 `json:"shed"`
	// Queued is the tasks currently waiting across all shard queues.
	Queued int `json:"queued"`
}

// Stats reads the coordinator's cumulative counters.
func (c *Coordinator) Stats() Stats {
	st := Stats{
		Shards:   len(c.workers),
		Nodes:    int(c.nodeCount.Load()),
		Offered:  c.offered.Load(),
		Accepted: c.accepted.Load(),
		Rejected: c.rejected.Load(),
		Shed:     c.shed.Load(),
	}
	for _, w := range c.workers {
		st.Queued += int(w.queued.Load())
	}
	return st
}

// Close stops the workers (draining already-queued tasks first) and
// closes every node WAL. Offers concurrent with Close either complete
// or report the coordinator closed; Close returns after all shard
// goroutines have exited.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, w := range c.workers {
		close(w.tasks)
	}
	c.mu.Unlock()
	c.wg.Wait()
	return c.closeNodes()
}

// closeNodes closes every node's journal (workers must have exited, or
// never started).
func (c *Coordinator) closeNodes() error {
	var first error
	for _, w := range c.workers {
		for _, st := range w.nodes {
			if st.ns.Log == nil {
				continue
			}
			if err := st.ns.Log.Close(); err != nil && first == nil {
				first = err
			}
			st.ns.Log = nil
		}
	}
	return first
}
