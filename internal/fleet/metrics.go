package fleet

import "albadross/internal/obs"

// Fleet metrics, registered on the default obs registry at import time
// and documented in docs/OBSERVABILITY.md. Per-shard series are labeled
// with the shard index — cardinality is bounded by the configured shard
// count, never by the node count.
var (
	fleetRows = obs.NewCounter(obs.Opts{
		Name: "fleet_rows_total",
		Help: "Bulk-ingest readings accepted into shard-owned node chains.",
		Unit: "rows",
	})
	fleetRejected = obs.NewCounter(obs.Opts{
		Name: "fleet_rejected_rows_total",
		Help: "Bulk-ingest readings refused permanently (width mismatch, per-row chain errors, node-capacity overflow).",
		Unit: "rows",
	})
	fleetShed = obs.NewCounterVec(obs.Opts{
		Name: "fleet_shed_rows_total",
		Help: "Bulk-ingest readings shed by back-pressure because the shard queue was full, by shard.",
		Unit: "rows",
	}, "shard")
	fleetQueueDepth = obs.NewGaugeVec(obs.Opts{
		Name: "fleet_queue_depth",
		Help: "Bulk-ingest tasks waiting in the shard worker queue at last sample, by shard.",
		Unit: "tasks",
	}, "shard")
	fleetNodes = obs.NewGauge(obs.Opts{
		Name: "fleet_routed_nodes",
		Help: "Logical nodes with live chain state across all shard workers.",
		Unit: "nodes",
	})
	fleetBatchRows = obs.NewHistogram(obs.Opts{
		Name:    "fleet_bulk_batch_rows",
		Help:    "Rows per bulk ingest batch offered to the fleet coordinator.",
		Unit:    "rows",
		Buckets: obs.SizeBuckets,
	})
	fleetDiagnoses = obs.NewCounter(obs.Opts{
		Name: "fleet_diagnoses_total",
		Help: "Window diagnoses emitted by fleet node chains.",
		Unit: "diagnoses",
	})
	rollupObserved = obs.NewCounter(obs.Opts{
		Name: "fleet_rollup_observed_total",
		Help: "Diagnoses folded into the fleet rollup heap.",
		Unit: "diagnoses",
	})
	rollupHeapSize = obs.NewGauge(obs.Opts{
		Name: "fleet_rollup_heap_size",
		Help: "Nodes ranked by the fleet rollup's bounded heap.",
		Unit: "nodes",
	})
)
