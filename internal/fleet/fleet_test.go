package fleet_test

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"albadross/internal/fleet"
	"albadross/internal/pipeline"
	"albadross/internal/stream"
	"albadross/internal/wal"
)

// sumFeatures renders a window into one per-metric mean vector.
type sumFeatures struct{ metrics int }

func (f sumFeatures) Vector(rows [][]float64) ([]float64, error) {
	out := make([]float64, f.metrics)
	for _, row := range rows {
		for m, v := range row {
			if !math.IsNaN(v) {
				out[m] += v / float64(len(rows))
			}
		}
	}
	return out, nil
}

func (sumFeatures) Reset() {}

// thresholdPredict labels a window anomalous when its first feature
// clears the cut.
type thresholdPredict struct {
	cut     float64
	gate    chan struct{} // when non-nil, Predict blocks until the gate closes
	blocked *atomic.Int32 // incremented before blocking on the gate
}

func (p *thresholdPredict) Predict(vec []float64) (string, float64, error) {
	if p.gate != nil {
		if p.blocked != nil {
			p.blocked.Add(1)
		}
		<-p.gate
	}
	if vec[0] > p.cut {
		return "cpuoccupy", 0.9, nil
	}
	return "healthy", 0.8, nil
}

const (
	testMetrics = 3
	testWindow  = 8
)

// factoryOpts tunes the test node factory.
type factoryOpts struct {
	walDir  string
	gates   map[int]chan struct{} // per-shard predict gates (wedge tests)
	router  *fleet.Router
	blocked *atomic.Int32
}

// testFactory builds minimal per-node chains: mean features, threshold
// prediction, optional journaling under fleet.NodeWALDir.
func testFactory(opts factoryOpts) func(node int, sink pipeline.Sink) (*fleet.NodeStream, error) {
	return func(node int, sink pipeline.Sink) (*fleet.NodeStream, error) {
		pred := &thresholdPredict{cut: 0.5, blocked: opts.blocked}
		if opts.gates != nil {
			pred.gate = opts.gates[opts.router.Shard(node)]
		}
		var log *wal.Log
		if opts.walDir != "" {
			l, err := wal.Open(fleet.NodeWALDir(opts.walDir, node), wal.Options{})
			if err != nil {
				return nil, err
			}
			log = l
		}
		chain, err := pipeline.NewChain(pipeline.ChainConfig{
			Metrics:  testMetrics,
			Window:   testWindow,
			Features: sumFeatures{metrics: testMetrics},
			Predict:  pred,
			Sink:     sink,
			Journal:  log,
		})
		if err != nil {
			if log != nil {
				_ = log.Close()
			}
			return nil, err
		}
		if log != nil && log.Stats().Records > 0 {
			if err := pipeline.Replay(log, chain); err != nil {
				_ = log.Close()
				return nil, err
			}
		}
		return &fleet.NodeStream{Chain: chain, Log: log}, nil
	}
}

// feedRows builds an interleaved bulk batch: rowsPerNode readings per
// node, round-robin across nodes, per-node timestamps continuing at t0.
// Node values are deterministic in (node, t); odd nodes run hot (first
// metric above the predict cut).
func feedRows(nodes []int, t0, rowsPerNode int) []fleet.Row {
	var rows []fleet.Row
	for r := 0; r < rowsPerNode; r++ {
		for _, n := range nodes {
			v := fleet.Values{0.1, 0.2, 0.3}
			if n%2 == 1 {
				v[0] = 0.9
			}
			rows = append(rows, fleet.Row{
				Node: n, App: fmt.Sprintf("app-%d", n%3), T: t0 + r, Values: v,
			})
		}
	}
	return rows
}

func TestRouterDeterministicAndBounded(t *testing.T) {
	a, err := fleet.NewRouter(8)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := fleet.NewRouter(8)
	counts := make([]int, 8)
	for node := 0; node < 1488; node++ {
		s := a.Shard(node)
		if s < 0 || s >= 8 {
			t.Fatalf("node %d routed outside [0,8): %d", node, s)
		}
		if s != b.Shard(node) {
			t.Fatalf("node %d routed differently by identical routers", node)
		}
		counts[s]++
	}
	mean := 1488.0 / 8
	for s, c := range counts {
		if float64(c) < mean/2 || float64(c) > mean*2 {
			t.Fatalf("shard %d holds %d of 1488 nodes; want within [%.0f, %.0f]", s, c, mean/2, mean*2)
		}
	}
	if _, err := fleet.NewRouter(0); err == nil {
		t.Fatal("NewRouter(0) should fail")
	}
}

func TestRouterShardCountChangeMovesFewNodes(t *testing.T) {
	a, _ := fleet.NewRouter(8)
	b, _ := fleet.NewRouter(9)
	moved := 0
	for node := 0; node < 1488; node++ {
		if a.Shard(node) != b.Shard(node) {
			moved++
		}
	}
	// Rendezvous hashing moves ~1/9 of the nodes when a ninth shard
	// appears; modulo hashing would move ~8/9. Allow generous slack.
	if moved > 1488/3 {
		t.Fatalf("growing 8->9 shards moved %d of 1488 nodes; rendezvous hashing should move ~%d", moved, 1488/9)
	}
}

func TestDemuxGroupsPreserveOrderAndShard(t *testing.T) {
	router, _ := fleet.NewRouter(4)
	d := fleet.NewDemux(router)
	nodes := []int{7, 3, 12, 7, 99, 3, 7}
	var rows []fleet.Row
	for i, n := range nodes {
		rows = append(rows, fleet.Row{Node: n, T: i, App: fmt.Sprintf("a%d", n), Values: fleet.Values{1, 2, 3}})
	}
	batches := d.Split(rows)
	seen := map[int][]int{}
	total := 0
	for _, sb := range batches {
		for _, nb := range sb.Nodes {
			if nb.Shard != sb.Shard || nb.Shard != router.Shard(nb.Node) {
				t.Fatalf("node %d: shard mismatch (%d vs %d)", nb.Node, nb.Shard, router.Shard(nb.Node))
			}
			if want := fmt.Sprintf("a%d", nb.Node); nb.App != want {
				t.Fatalf("node %d app %q, want %q", nb.Node, nb.App, want)
			}
			for _, r := range nb.Rows {
				if r.Node != nb.Node {
					t.Fatalf("row for node %d grouped under %d", r.Node, nb.Node)
				}
				seen[nb.Node] = append(seen[nb.Node], r.T)
				total++
			}
		}
	}
	if total != len(rows) {
		t.Fatalf("split %d rows, got %d back", len(rows), total)
	}
	if got, want := fmt.Sprint(seen[7]), fmt.Sprint([]int{0, 3, 6}); got != want {
		t.Fatalf("node 7 arrival order %s, want %s", got, want)
	}
	// A second split on the same demux must be self-consistent (scratch
	// reuse) and independent of the first batch's content.
	second := d.Split(feedRows([]int{1, 2, 3, 4}, 0, 3))
	n2 := 0
	for _, sb := range second {
		for _, nb := range sb.Nodes {
			n2 += len(nb.Rows)
		}
	}
	if n2 != 12 {
		t.Fatalf("second split lost rows: %d of 12", n2)
	}
}

func TestDemuxSteadyStateDoesNotAllocate(t *testing.T) {
	router, _ := fleet.NewRouter(4)
	d := fleet.NewDemux(router)
	rows := feedRows([]int{1, 2, 3, 4, 5, 6, 7, 8}, 0, 4)
	d.Split(rows) // warm the scratch
	allocs := testing.AllocsPerRun(50, func() {
		d.Split(rows)
	})
	if allocs > 0.5 {
		t.Fatalf("warmed Split allocates %.1f times per batch; scratch reuse is broken", allocs)
	}
}

func TestValuesJSONRoundTripsNaNAsNull(t *testing.T) {
	in := fleet.Row{Node: 4, App: "BT", T: 9, Values: fleet.Values{1.5, math.NaN(), -2}}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out fleet.Row
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Node != 4 || out.App != "BT" || out.T != 9 || len(out.Values) != 3 {
		t.Fatalf("round trip mangled the row: %+v from %s", out, raw)
	}
	if out.Values[0] != 1.5 || !math.IsNaN(out.Values[1]) || out.Values[2] != -2 {
		t.Fatalf("values round trip: %v", out.Values)
	}
	if err := json.Unmarshal([]byte(`{"values":[1,"x"]}`), &out); err == nil {
		t.Fatal("non-numeric cell should fail to decode")
	}
}

func TestRollupTopKMatchesNaiveRanking(t *testing.T) {
	r := fleet.NewRollup(fleet.RollupConfig{Recent: 8})
	// Deterministic mixed traffic: node n gets 20 diagnoses, anomalous
	// when (n*7+i)%5 == 0 — different fractions per node.
	for n := 0; n < 60; n++ {
		for i := 0; i < 20; i++ {
			d := stream.Diagnosis{Label: "healthy", Confidence: 0.8, WindowEnd: i}
			if (n*7+i)%5 == 0 {
				d.Label = "memleak"
				d.Confidence = 0.9
			}
			r.Observe(n, fmt.Sprintf("app-%d", n%4), d)
		}
	}
	if r.Tracked() != 60 {
		t.Fatalf("tracked %d nodes, want 60", r.Tracked())
	}
	top := r.TopK(10)
	if len(top) != 10 {
		t.Fatalf("TopK(10) returned %d entries", len(top))
	}
	// The walk must yield a monotonically non-increasing ranking with
	// node-ascending ties, and TopK(all) must agree with TopK(10)'s
	// prefix.
	all := r.TopK(60)
	for i := 1; i < len(all); i++ {
		a, b := all[i-1], all[i]
		if a.Score < b.Score || (a.Score == b.Score && a.Node > b.Node) {
			t.Fatalf("ranking violated at %d: %+v then %+v", i, a, b)
		}
	}
	for i := range top {
		if top[i] != all[i] {
			t.Fatalf("TopK(10)[%d] != TopK(60)[%d]: %+v vs %+v", i, i, top[i], all[i])
		}
	}
	apps := r.Apps()
	if len(apps) != 4 {
		t.Fatalf("got %d apps, want 4", len(apps))
	}
	nodes, windows := 0, 0
	for _, a := range apps {
		nodes += a.Nodes
		windows += a.Windows
	}
	if nodes != 60 || windows != 60*20 {
		t.Fatalf("app aggregates: %d nodes %d windows, want 60 and 1200", nodes, windows)
	}
}

func TestCoordinatorBulkRoundTrip(t *testing.T) {
	c, err := fleet.NewCoordinator(fleet.Config{
		Shards:  3,
		Metrics: testMetrics,
		NewNode: testFactory(factoryOpts{}),
		Rollup:  fleet.NewRollup(fleet.RollupConfig{Recent: 4}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	nodes := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	perNode := 3 * testWindow
	for step := 0; step < perNode; step += testWindow {
		res, err := c.Offer(feedRows(nodes, step, testWindow))
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted != len(nodes)*testWindow || res.Shed != 0 || res.Rejected != 0 {
			t.Fatalf("batch at %d: %+v", step, res)
		}
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	infos, err := c.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(nodes) {
		t.Fatalf("%d node infos, want %d", len(infos), len(nodes))
	}
	for _, info := range infos {
		if info.Committed != perNode || info.Pending != 0 {
			t.Fatalf("node %d committed %d pending %d, want %d and 0", info.Node, info.Committed, info.Pending, perNode)
		}
		if want := perNode / testWindow; info.Emitted != want {
			t.Fatalf("node %d emitted %d diagnoses, want %d", info.Node, info.Emitted, want)
		}
	}
	// Odd nodes run hot: every odd node outranks every even node.
	top := c.Stats()
	if top.Accepted != int64(len(nodes)*perNode) {
		t.Fatalf("stats accepted %d, want %d", top.Accepted, len(nodes)*perNode)
	}
}

func TestCoordinatorRejectsWrongWidthRows(t *testing.T) {
	c, err := fleet.NewCoordinator(fleet.Config{
		Shards: 2, Metrics: testMetrics, NewNode: testFactory(factoryOpts{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	rows := []fleet.Row{
		{Node: 1, T: 0, Values: fleet.Values{1, 2, 3}},
		{Node: 1, T: 1, Values: fleet.Values{1, 2}}, // wrong width
		{Node: 2, T: 0, Values: fleet.Values{1, 2, 3}},
	}
	res, err := c.Offer(rows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered != 3 || res.Accepted != 2 || res.Rejected != 1 {
		t.Fatalf("width screening: %+v", res)
	}
}

func TestCoordinatorNodeCapacityRejects(t *testing.T) {
	c, err := fleet.NewCoordinator(fleet.Config{
		Shards: 2, Metrics: testMetrics, MaxNodesPerShard: 1,
		NewNode: testFactory(factoryOpts{}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	res, err := c.Offer(feedRows([]int{0, 1, 2, 3, 4, 5, 6, 7}, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted+res.Rejected+res.Shed != res.Offered {
		t.Fatalf("accounting leak: %+v", res)
	}
	if res.Rejected == 0 {
		t.Fatalf("8 nodes on 2 shards with capacity 1 should reject some rows: %+v", res)
	}
	if n := c.Stats().Nodes; n < 1 || n > 2 {
		t.Fatalf("node maps should be capped at 1 per shard, got %d total", n)
	}
}

// TestWedgedShardShedsOnlyItsRows is the back-pressure contract: with
// one shard's predict stage wedged and its queue full, bulk batches
// shed exactly that shard's rows while every other shard keeps
// accepting at full throughput, and the cheap stats stay readable.
func TestWedgedShardShedsOnlyItsRows(t *testing.T) {
	router, _ := fleet.NewRouter(3)
	// Find a victim node and two nodes on the other shards.
	victim := 0
	wedged := router.Shard(victim)
	var others []int
	for n := 1; len(others) < 4 && n < 1000; n++ {
		if router.Shard(n) != wedged {
			others = append(others, n)
		}
	}
	gate := make(chan struct{})
	gates := map[int]chan struct{}{wedged: gate}
	var blocked atomic.Int32
	c, err := fleet.NewCoordinator(fleet.Config{
		Shards: 3, Metrics: testMetrics, QueueDepth: 1,
		NewNode: testFactory(factoryOpts{gates: gates, router: router, blocked: &blocked}),
		Rollup:  fleet.NewRollup(fleet.RollupConfig{}),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wedge the victim shard: a full window completes a prediction that
	// blocks on the gate, freezing the worker mid-task.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := c.Offer(feedRows([]int{victim}, 0, testWindow)); err != nil {
			t.Errorf("wedged offer 1: %v", err)
		}
	}()
	waitFor(t, "worker wedged", func() bool { return blocked.Load() >= 1 })
	// Fill the queue behind the wedged worker.
	go func() {
		defer wg.Done()
		if _, err := c.Offer(feedRows([]int{victim}, testWindow, testWindow)); err != nil {
			t.Errorf("wedged offer 2: %v", err)
		}
	}()
	waitFor(t, "queue full", func() bool { return c.Stats().Queued >= 1 })

	// Now a mixed batch: the victim's rows must shed, the others' rows
	// must be accepted, synchronously.
	mixed := append(feedRows([]int{victim}, 2*testWindow, testWindow), feedRows(others, 0, testWindow)...)
	res, err := c.Offer(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != testWindow {
		t.Fatalf("want exactly the victim's %d rows shed, got %d (%+v)", testWindow, res.Shed, res)
	}
	if res.Accepted != len(others)*testWindow {
		t.Fatalf("other shards should accept all %d rows, got %d", len(others)*testWindow, res.Accepted)
	}
	if res.RetryAfter <= 0 {
		t.Fatal("a shedding batch must carry a Retry-After hint")
	}
	for _, sr := range res.PerShard {
		if sr.Shard == wedged && sr.Shed != sr.Offered {
			t.Fatalf("wedged shard accounting: %+v", sr)
		}
		if sr.Shard != wedged && sr.Shed != 0 {
			t.Fatalf("healthy shard %d shed rows: %+v", sr.Shard, sr)
		}
	}
	// Stats stays readable while wedged (the health-probe path).
	if st := c.Stats(); st.Shards != 3 {
		t.Fatalf("stats under wedge: %+v", st)
	}

	close(gate)
	wg.Wait()
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Offer(feedRows(others, 99, 1)); err == nil {
		t.Fatal("Offer after Close must fail")
	}
}

// waitFor polls a condition with a deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardCountInvariance is the acceptance criterion: per-node state
// and the rollup artifacts are byte-identical whether the fleet folds
// onto 2 or 5 shards, because every node's chain sees the same ordered
// rows either way.
func TestShardCountInvariance(t *testing.T) {
	run := func(shards int) (string, string, []fleet.NodeInfo) {
		roll := fleet.NewRollup(fleet.RollupConfig{Recent: 4})
		c, err := fleet.NewCoordinator(fleet.Config{
			Shards: shards, Metrics: testMetrics,
			NewNode: testFactory(factoryOpts{}), Rollup: roll,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		nodes := []int{3, 11, 42, 100, 101, 555, 1487}
		for step := 0; step < 4*testWindow; step += testWindow {
			if _, err := c.Offer(feedRows(nodes, step, testWindow)); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Quiesce(); err != nil {
			t.Fatal(err)
		}
		topk, err := json.Marshal(roll.TopK(len(nodes)))
		if err != nil {
			t.Fatal(err)
		}
		apps, err := json.Marshal(roll.Apps())
		if err != nil {
			t.Fatal(err)
		}
		infos, err := c.Nodes()
		if err != nil {
			t.Fatal(err)
		}
		return string(topk), string(apps), infos
	}
	topk2, apps2, infos2 := run(2)
	topk5, apps5, infos5 := run(5)
	if topk2 != topk5 {
		t.Fatalf("topk differs across shard counts:\n2: %s\n5: %s", topk2, topk5)
	}
	if apps2 != apps5 {
		t.Fatalf("apps differs across shard counts:\n2: %s\n5: %s", apps2, apps5)
	}
	for i := range infos2 {
		a, b := infos2[i], infos5[i]
		if a.Node != b.Node || a.Stats != b.Stats || a.Committed != b.Committed ||
			a.Pending != b.Pending || a.Emitted != b.Emitted {
			t.Fatalf("node state differs across shard counts:\n2: %+v\n5: %+v", a, b)
		}
	}
}

// TestRecoveryBitwise crashes a journaling fleet (Close without
// flushing reorder buffers) and recovers it via Preload: per-node chain
// accounting must match the pre-crash snapshot exactly.
func TestRecoveryBitwise(t *testing.T) {
	dir := t.TempDir()
	mk := func(preload []int) *fleet.Coordinator {
		c, err := fleet.NewCoordinator(fleet.Config{
			Shards: 3, Metrics: testMetrics,
			NewNode: testFactory(factoryOpts{walDir: dir}),
			Rollup:  fleet.NewRollup(fleet.RollupConfig{}),
			Preload: preload,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c := mk(nil)
	nodes := []int{5, 17, 40, 41}
	// 2.5 windows per node: the third window is still forming at the
	// crash, so recovery must rebuild mid-window ring state too.
	if _, err := c.Offer(feedRows(nodes, 0, 2*testWindow+testWindow/2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(); err != nil {
		t.Fatal(err)
	}
	before, err := c.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	found, err := fleet.ListNodeWALs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(found) != fmt.Sprint(nodes) {
		t.Fatalf("ListNodeWALs found %v, want %v", found, nodes)
	}
	rc := mk(found)
	defer func() { _ = rc.Close() }()
	after, err := rc.Nodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("recovered %d nodes, want %d", len(after), len(before))
	}
	for i := range before {
		a, b := before[i], after[i]
		if a.Node != b.Node || a.Stats != b.Stats || a.Committed != b.Committed ||
			a.Pending != b.Pending || a.Emitted != b.Emitted {
			t.Fatalf("node %d state diverged after recovery:\nbefore: %+v\nafter:  %+v", a.Node, a, b)
		}
	}
	// The recovered fleet keeps accepting where the crashed one stopped.
	res, err := rc.Offer(feedRows(nodes, 2*testWindow+testWindow/2, testWindow/2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != len(nodes)*testWindow/2 {
		t.Fatalf("post-recovery offer: %+v", res)
	}
}
