// Package ldms reads and writes node telemetry in the CSV layout of the
// Lightweight Distributed Metric Service's csv store, the monitoring
// framework the paper collects data with (Sec. IV-B). It is the bridge
// between this repository's simulator and real deployments: telemetry
// captured from an actual LDMS daemon can be loaded into the same
// pipeline, and simulated runs can be exported for inspection.
//
// The on-disk format per node sample is
//
//	#meta system=volta app=CG input=1 nodes=4 node=0 anomaly=healthy intensity=0
//	#Time,cpu.user,cpu.idle,...
//	0,123.4,98.1,...
//	1,,97.2,...          <- empty cells are missing samples (NaN)
//
// matching LDMS conventions: a header row naming the metric columns, one
// row per sampling interval, and a leading timestamp column. The #meta
// comment carries the run provenance this repository tracks.
package ldms

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"albadross/internal/telemetry"
	"albadross/internal/ts"
)

// WriteCSV serializes one node sample. The schema provides the column
// names; its length must match the sample's metric count.
func WriteCSV(w io.Writer, s *telemetry.NodeSample, schema []telemetry.Metric) error {
	if s == nil || s.Data == nil {
		return errors.New("ldms: nil sample")
	}
	if len(schema) != len(s.Data.Metrics) {
		return fmt.Errorf("ldms: schema has %d metrics, sample has %d", len(schema), len(s.Data.Metrics))
	}
	bw := bufio.NewWriter(w)
	meta := s.Meta
	fmt.Fprintf(bw, "#meta system=%s app=%s input=%d nodes=%d node=%d anomaly=%s intensity=%g runid=%d\n",
		meta.System, meta.App, meta.Input, meta.Nodes, meta.Node, meta.Anomaly, meta.Intensity, meta.RunID)
	bw.WriteString("#Time")
	for _, m := range schema {
		bw.WriteByte(',')
		bw.WriteString(m.Name)
	}
	bw.WriteByte('\n')
	steps := s.Data.Steps()
	for t := 0; t < steps; t++ {
		bw.WriteString(strconv.Itoa(t))
		for mi := range schema {
			bw.WriteByte(',')
			v := s.Data.Metrics[mi][t]
			if !math.IsNaN(v) {
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadCSV parses one node sample. When schema is non-nil the file's
// columns must match it exactly (names and order); with a nil schema the
// columns are taken as-is and returned.
func ReadCSV(r io.Reader, schema []telemetry.Metric) (*telemetry.NodeSample, []string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var meta telemetry.RunMeta
	var cols []string
	var rows [][]float64
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "#meta "):
			var err error
			meta, err = parseMeta(strings.TrimPrefix(line, "#meta "))
			if err != nil {
				return nil, nil, fmt.Errorf("ldms: line %d: %w", lineNo, err)
			}
		case strings.HasPrefix(line, "#Time"):
			parts := strings.Split(line, ",")
			cols = parts[1:]
			if schema != nil {
				if len(cols) != len(schema) {
					return nil, nil, fmt.Errorf("ldms: file has %d metric columns, schema expects %d", len(cols), len(schema))
				}
				for i, m := range schema {
					if cols[i] != m.Name {
						return nil, nil, fmt.Errorf("ldms: column %d is %q, schema expects %q", i, cols[i], m.Name)
					}
				}
			}
		case strings.HasPrefix(line, "#"):
			// Other comments are ignored.
		default:
			if cols == nil {
				return nil, nil, fmt.Errorf("ldms: line %d: data before #Time header", lineNo)
			}
			parts := strings.Split(line, ",")
			if len(parts) != len(cols)+1 {
				return nil, nil, fmt.Errorf("ldms: line %d: %d fields, expected %d", lineNo, len(parts), len(cols)+1)
			}
			row := make([]float64, len(cols))
			for i, cell := range parts[1:] {
				if cell == "" {
					row[i] = math.NaN()
					continue
				}
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("ldms: line %d col %d: %w", lineNo, i+2, err)
				}
				row[i] = v
			}
			rows = append(rows, row)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if cols == nil {
		return nil, nil, errors.New("ldms: missing #Time header")
	}
	if len(rows) == 0 {
		return nil, nil, errors.New("ldms: no samples")
	}
	data := ts.NewMultivariate(len(cols), len(rows))
	for t, row := range rows {
		for mi, v := range row {
			data.Metrics[mi][t] = v
		}
	}
	return &telemetry.NodeSample{Meta: meta, Data: data}, cols, nil
}

// parseMeta decodes the space-separated key=value provenance line.
func parseMeta(s string) (telemetry.RunMeta, error) {
	var meta telemetry.RunMeta
	for _, kv := range strings.Fields(s) {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return meta, fmt.Errorf("malformed meta field %q", kv)
		}
		key, val := kv[:eq], kv[eq+1:]
		var err error
		switch key {
		case "system":
			meta.System = val
		case "app":
			meta.App = val
		case "anomaly":
			meta.Anomaly = val
		case "input":
			meta.Input, err = strconv.Atoi(val)
		case "nodes":
			meta.Nodes, err = strconv.Atoi(val)
		case "node":
			meta.Node, err = strconv.Atoi(val)
		case "runid":
			meta.RunID, err = strconv.ParseInt(val, 10, 64)
		case "intensity":
			meta.Intensity, err = strconv.ParseFloat(val, 64)
		default:
			// Unknown keys are tolerated for forward compatibility.
		}
		if err != nil {
			return meta, fmt.Errorf("meta field %q: %w", kv, err)
		}
	}
	return meta, nil
}

// WriteRunDir stores one CSV file per node sample under dir, named
// node<N>.csv.
func WriteRunDir(dir string, samples []*telemetry.NodeSample, schema []telemetry.Metric) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range samples {
		path := filepath.Join(dir, fmt.Sprintf("node%d.csv", s.Meta.Node))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := WriteCSV(f, s, schema); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ReadRunDir loads every node<N>.csv under dir, sorted by node index.
func ReadRunDir(dir string, schema []telemetry.Metric) ([]*telemetry.NodeSample, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var samples []*telemetry.NodeSample
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "node") || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		s, _, err := ReadCSV(f, schema)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("ldms: %s: %w", e.Name(), err)
		}
		samples = append(samples, s)
	}
	if len(samples) == 0 {
		return nil, fmt.Errorf("ldms: no node*.csv files in %s", dir)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].Meta.Node < samples[j].Meta.Node })
	return samples, nil
}
