// Package ldms reads and writes node telemetry in the CSV layout of the
// Lightweight Distributed Metric Service's csv store, the monitoring
// framework the paper collects data with (Sec. IV-B). It is the bridge
// between this repository's simulator and real deployments: telemetry
// captured from an actual LDMS daemon can be loaded into the same
// pipeline, and simulated runs can be exported for inspection.
//
// The on-disk format per node sample is
//
//	#meta system=volta app=CG input=1 nodes=4 node=0 anomaly=healthy intensity=0
//	#Time,cpu.user,cpu.idle,...
//	0,123.4,98.1,...
//	1,,97.2,...          <- empty cells are missing samples (NaN)
//
// matching LDMS conventions: a header row naming the metric columns, one
// row per sampling interval, and a leading timestamp column. The #meta
// comment carries the run provenance this repository tracks.
package ldms

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"albadross/internal/obs"
	"albadross/internal/telemetry"
	"albadross/internal/ts"
)

// WriteCSV serializes one node sample. The schema provides the column
// names; its length must match the sample's metric count.
func WriteCSV(w io.Writer, s *telemetry.NodeSample, schema []telemetry.Metric) error {
	if s == nil || s.Data == nil {
		return errors.New("ldms: nil sample")
	}
	if len(schema) != len(s.Data.Metrics) {
		return fmt.Errorf("ldms: schema has %d metrics, sample has %d", len(schema), len(s.Data.Metrics))
	}
	bw := bufio.NewWriter(w)
	meta := s.Meta
	fmt.Fprintf(bw, "#meta system=%s app=%s input=%d nodes=%d node=%d anomaly=%s intensity=%g runid=%d\n",
		meta.System, meta.App, meta.Input, meta.Nodes, meta.Node, meta.Anomaly, meta.Intensity, meta.RunID)
	bw.WriteString("#Time")
	for _, m := range schema {
		bw.WriteByte(',')
		bw.WriteString(m.Name)
	}
	bw.WriteByte('\n')
	steps := s.Data.Steps()
	for t := 0; t < steps; t++ {
		bw.WriteString(strconv.Itoa(t))
		for mi := range schema {
			bw.WriteByte(',')
			v := s.Data.Metrics[mi][t]
			if !math.IsNaN(v) {
				bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ParseError locates one malformed element of an LDMS CSV file.
type ParseError struct {
	File string // file name ("" when parsing a plain reader)
	Line int    // 1-based line number
	Col  int    // 1-based field number; 0 when the whole line is at fault
	Msg  string
}

// Error renders "ldms: <file>:<line>[ col N]: <msg>".
func (e *ParseError) Error() string {
	loc := fmt.Sprintf("line %d", e.Line)
	if e.File != "" {
		loc = fmt.Sprintf("%s:%d", e.File, e.Line)
	}
	if e.Col > 0 {
		loc += fmt.Sprintf(" col %d", e.Col)
	}
	return fmt.Sprintf("ldms: %s: %s", loc, e.Msg)
}

// ParseReport accounts for the damage a lenient parse tolerated.
type ParseReport struct {
	// Rows is the number of data rows kept.
	Rows int
	// RowsSkipped counts malformed rows dropped (wrong field count, data
	// before the header).
	RowsSkipped int
	// CellsMissing counts empty cells stored as NaN (ordinary LDMS
	// missing samples).
	CellsMissing int
	// CellsBad counts non-empty unparseable cells stored as NaN.
	CellsBad int
	// MissingCols lists schema metrics absent from the file (their
	// series are all-NaN); only populated when parsing against a schema.
	MissingCols []string
	// Errors holds the first MaxErrors structured errors encountered.
	Errors []*ParseError
}

// Merge folds another report into r (for directory-level accounting).
func (r *ParseReport) Merge(o *ParseReport) {
	if o == nil {
		return
	}
	r.Rows += o.Rows
	r.RowsSkipped += o.RowsSkipped
	r.CellsMissing += o.CellsMissing
	r.CellsBad += o.CellsBad
	r.MissingCols = append(r.MissingCols, o.MissingCols...)
	r.Errors = append(r.Errors, o.Errors...)
}

// Options configures ReadCSVOpts.
type Options struct {
	// Lenient skips malformed rows and maps unparseable cells to NaN
	// instead of failing the whole file; the damage is accounted in the
	// returned ParseReport. With a schema, lenient mode also matches
	// file columns to schema metrics by name, tolerating missing and
	// unknown columns.
	Lenient bool
	// File names the input in structured errors.
	File string
	// MaxErrors caps the structured errors recorded in the report
	// (default 20); parsing continues past the cap, only recording
	// stops.
	MaxErrors int
}

// ReadCSV parses one node sample strictly: the first malformed line
// fails the file with a *ParseError. When schema is non-nil the file's
// columns must match it exactly (names and order); with a nil schema the
// columns are taken as-is and returned.
func ReadCSV(r io.Reader, schema []telemetry.Metric) (*telemetry.NodeSample, []string, error) {
	s, cols, _, err := ReadCSVOpts(r, schema, Options{})
	return s, cols, err
}

// ReadCSVOpts parses one node sample under the given options and reports
// what the parse tolerated. The report is non-nil whenever parsing got
// far enough to account for anything, including alongside an error.
// Every parse is accounted in the obs registry (ldms_parse_seconds,
// ldms_rows_total, ...; see docs/OBSERVABILITY.md).
func ReadCSVOpts(r io.Reader, schema []telemetry.Metric, opts Options) (*telemetry.NodeSample, []string, *ParseReport, error) {
	span := obs.StartSpan(parseLatency)
	s, cols, rep, err := readCSVOpts(r, schema, opts)
	span.End()
	observeParse(rep, err != nil)
	return s, cols, rep, err
}

// readCSVOpts is ReadCSVOpts without the metrics accounting.
func readCSVOpts(r io.Reader, schema []telemetry.Metric, opts Options) (*telemetry.NodeSample, []string, *ParseReport, error) {
	if opts.MaxErrors <= 0 {
		opts.MaxErrors = 20
	}
	rep := &ParseReport{}
	record := func(e *ParseError) {
		if len(rep.Errors) < opts.MaxErrors {
			rep.Errors = append(rep.Errors, e)
		}
	}
	perr := func(line, col int, format string, args ...interface{}) *ParseError {
		return &ParseError{File: opts.File, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var meta telemetry.RunMeta
	var cols []string    // file column names
	var colMap []int     // file column -> output metric index (-1 drops)
	nOut := 0            // output metric count
	var rows [][]float64 // rows in output metric indexing
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "#meta "):
			m, err := parseMeta(strings.TrimPrefix(line, "#meta "))
			if err != nil {
				// Keep provenance from an earlier valid #meta line: a
				// partially-parsed RunMeta must not wipe it.
				e := perr(lineNo, 0, "%v", err)
				if !opts.Lenient {
					return nil, nil, rep, e
				}
				record(e)
				continue
			}
			meta = m
		case strings.HasPrefix(line, "#Time"):
			if cols != nil {
				// A repeated header (store rollover, concatenated files)
				// cannot re-shape the file mid-way: rows already collected
				// were sized under the first header, so a narrower or wider
				// replacement would corrupt the output block. Keep parsing
				// under the original header; rows matching only the new one
				// are skipped by the field-count check below.
				e := perr(lineNo, 0, "repeated #Time header")
				if !opts.Lenient {
					return nil, nil, rep, e
				}
				record(e)
				continue
			}
			parts := strings.Split(line, ",")
			cols = parts[1:]
			if len(cols) == 0 && schema == nil {
				// A metricless file cannot yield a sample; fatal even in
				// lenient mode (like a missing header).
				return nil, nil, rep, perr(lineNo, 0, "header has no metric columns")
			}
			var err *ParseError
			colMap, nOut, err = mapColumns(cols, schema, opts, rep, lineNo)
			if err != nil {
				if !opts.Lenient {
					return nil, nil, rep, err
				}
				record(err)
			}
		case strings.HasPrefix(line, "#"):
			// Other comments are ignored.
		default:
			if cols == nil {
				e := perr(lineNo, 0, "data before #Time header")
				if !opts.Lenient {
					return nil, nil, rep, e
				}
				rep.RowsSkipped++
				record(e)
				continue
			}
			parts := strings.Split(line, ",")
			if len(parts) != len(cols)+1 {
				e := perr(lineNo, 0, "%d fields, expected %d", len(parts), len(cols)+1)
				if !opts.Lenient {
					return nil, nil, rep, e
				}
				rep.RowsSkipped++
				record(e)
				continue
			}
			row := make([]float64, nOut)
			for i := range row {
				row[i] = math.NaN()
			}
			for i, cell := range parts[1:] {
				out := colMap[i]
				if out < 0 {
					continue
				}
				if cell == "" {
					rep.CellsMissing++
					continue
				}
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					e := perr(lineNo, i+2, "%v", err)
					if !opts.Lenient {
						return nil, nil, rep, e
					}
					rep.CellsBad++
					record(e)
					continue
				}
				row[out] = v
			}
			rows = append(rows, row)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, rep, err
	}
	if cols == nil {
		return nil, nil, rep, perr(lineNo, 0, "missing #Time header")
	}
	if len(rows) == 0 {
		return nil, nil, rep, perr(lineNo, 0, "no samples")
	}
	rep.Rows = len(rows)
	data := ts.NewMultivariate(nOut, len(rows))
	for t, row := range rows {
		for mi, v := range row {
			data.Metrics[mi][t] = v
		}
	}
	outCols := cols
	if schema != nil {
		outCols = make([]string, len(schema))
		for i, m := range schema {
			outCols[i] = m.Name
		}
	}
	return &telemetry.NodeSample{Meta: meta, Data: data}, outCols, rep, nil
}

// mapColumns resolves the file's metric columns against the schema,
// returning the file-column→output-metric map and the output width. In
// strict mode any mismatch is an error; in lenient mode columns are
// matched by name, unknown file columns are dropped and missing schema
// columns become all-NaN series (whole-metric dropout).
func mapColumns(cols []string, schema []telemetry.Metric, opts Options, rep *ParseReport, lineNo int) ([]int, int, *ParseError) {
	colMap := make([]int, len(cols))
	if schema == nil {
		for i := range colMap {
			colMap[i] = i
		}
		return colMap, len(cols), nil
	}
	if !opts.Lenient {
		if len(cols) != len(schema) {
			return colMap, len(schema), &ParseError{File: opts.File, Line: lineNo,
				Msg: fmt.Sprintf("file has %d metric columns, schema expects %d", len(cols), len(schema))}
		}
		for i, m := range schema {
			if cols[i] != m.Name {
				return colMap, len(schema), &ParseError{File: opts.File, Line: lineNo, Col: i + 2,
					Msg: fmt.Sprintf("column %d is %q, schema expects %q", i, cols[i], m.Name)}
			}
			colMap[i] = i
		}
		return colMap, len(schema), nil
	}
	byName := make(map[string]int, len(schema))
	for i, m := range schema {
		byName[m.Name] = i
	}
	present := make([]bool, len(schema))
	var firstErr *ParseError
	for i, c := range cols {
		pos, ok := byName[c]
		if !ok {
			colMap[i] = -1
			if firstErr == nil {
				firstErr = &ParseError{File: opts.File, Line: lineNo, Col: i + 2,
					Msg: fmt.Sprintf("unknown column %q dropped", c)}
			}
			continue
		}
		colMap[i] = pos
		present[pos] = true
	}
	for i, m := range schema {
		if !present[i] {
			rep.MissingCols = append(rep.MissingCols, m.Name)
		}
	}
	return colMap, len(schema), firstErr
}

// parseMeta decodes the space-separated key=value provenance line.
func parseMeta(s string) (telemetry.RunMeta, error) {
	var meta telemetry.RunMeta
	for _, kv := range strings.Fields(s) {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return meta, fmt.Errorf("malformed meta field %q", kv)
		}
		key, val := kv[:eq], kv[eq+1:]
		var err error
		switch key {
		case "system":
			meta.System = val
		case "app":
			meta.App = val
		case "anomaly":
			meta.Anomaly = val
		case "input":
			meta.Input, err = strconv.Atoi(val)
		case "nodes":
			meta.Nodes, err = strconv.Atoi(val)
		case "node":
			meta.Node, err = strconv.Atoi(val)
		case "runid":
			meta.RunID, err = strconv.ParseInt(val, 10, 64)
		case "intensity":
			meta.Intensity, err = strconv.ParseFloat(val, 64)
		default:
			// Unknown keys are tolerated for forward compatibility.
		}
		if err != nil {
			return meta, fmt.Errorf("meta field %q: %w", kv, err)
		}
	}
	return meta, nil
}

// WriteRunDir stores one CSV file per node sample under dir, named
// node<N>.csv.
func WriteRunDir(dir string, samples []*telemetry.NodeSample, schema []telemetry.Metric) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range samples {
		path := filepath.Join(dir, fmt.Sprintf("node%d.csv", s.Meta.Node))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := WriteCSV(f, s, schema); err != nil {
			f.Close() //albacheck:ignore errsilent best-effort close on the error path; the write error dominates
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// ReadRunDir loads every node<N>.csv under dir, sorted by node index.
func ReadRunDir(dir string, schema []telemetry.Metric) ([]*telemetry.NodeSample, error) {
	samples, _, err := ReadRunDirOpts(dir, schema, Options{})
	return samples, err
}

// ReadRunDirOpts loads every node<N>.csv under dir with the given parse
// options and returns the samples (sorted by node index) plus a merged
// parse report. In lenient mode a file that fails entirely (missing
// header, no rows) is skipped with its error recorded in the report;
// the call only fails when no file yields a sample.
func ReadRunDirOpts(dir string, schema []telemetry.Metric, opts Options) ([]*telemetry.NodeSample, *ParseReport, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	agg := &ParseReport{}
	var samples []*telemetry.NodeSample
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), "node") || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, agg, err
		}
		fileOpts := opts
		if fileOpts.File == "" {
			fileOpts.File = e.Name()
		}
		s, _, rep, err := ReadCSVOpts(f, schema, fileOpts)
		f.Close() //albacheck:ignore errsilent file was only read; Close errors carry no data-loss signal
		agg.Merge(rep)
		if err != nil {
			if opts.Lenient {
				if pe, ok := err.(*ParseError); ok {
					agg.Errors = append(agg.Errors, pe)
				} else {
					agg.Errors = append(agg.Errors, &ParseError{File: fileOpts.File, Msg: err.Error()})
				}
				continue
			}
			return nil, agg, fmt.Errorf("ldms: %s: %w", e.Name(), err)
		}
		samples = append(samples, s)
	}
	if len(samples) == 0 {
		return nil, agg, fmt.Errorf("ldms: no readable node*.csv files in %s", dir)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].Meta.Node < samples[j].Meta.Node })
	return samples, agg, nil
}
