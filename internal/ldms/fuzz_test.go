package ldms

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"albadross/internal/telemetry"
)

// fuzzSchema is a small fixed schema so the fuzzer also exercises the
// column-mapping path.
func fuzzSchema() []telemetry.Metric {
	return []telemetry.Metric{
		{Name: "cpu.user"},
		{Name: "mem.free"},
		{Name: "net.tx", Cumulative: true},
	}
}

// FuzzReadCSV asserts the parser never panics and keeps its contract —
// strict mode returns a sample or an error (never both nil), lenient
// mode's report is consistent with the sample it returns — no matter
// what bytes arrive. Run with: go test -fuzz=FuzzReadCSV ./internal/ldms
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("#meta system=volta app=CG input=0 nodes=1 node=0 anomaly=healthy intensity=0 runid=1\n#Time,cpu.user,mem.free,net.tx\n0,1.5,2.5,3\n1,,2.25,4\n"))
	f.Add([]byte("#Time,cpu.user,mem.free,net.tx\n0,1,2,3\n"))
	f.Add([]byte("#Time,cpu.user\n0,1\n1,not-a-number\n"))
	f.Add([]byte("0,1,2,3\n#Time,cpu.user,mem.free,net.tx\n"))
	f.Add([]byte("#meta input=oops\n#Time,bogus\n0,\n"))
	f.Add([]byte(""))
	f.Add([]byte("#Time\n\n"))
	f.Add([]byte("#Time,cpu.user,mem.free,net.tx\n0,1,2\n1,1,2,3,4\n2,9,9,9\n"))
	f.Add([]byte("#Time,a,b\n0,1,2\n#Time,a\n1,1\n"))
	f.Add([]byte("#Time,a\n0,1\n#Time,a,b\n1,1,2\n#meta input=oops\n2,2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, schema := range [][]telemetry.Metric{nil, fuzzSchema()} {
			s, cols, err := ReadCSV(bytes.NewReader(data), schema)
			if err == nil && (s == nil || s.Data == nil || len(cols) == 0 && len(s.Data.Metrics) > 0) {
				t.Fatalf("strict parse returned no error and no usable sample (schema=%v)", schema != nil)
			}
			ls, _, rep, lerr := ReadCSVOpts(bytes.NewReader(data), schema, Options{Lenient: true, File: "fuzz.csv"})
			if rep == nil {
				t.Fatal("lenient parse returned a nil report")
			}
			if lerr == nil {
				if ls == nil || ls.Data == nil {
					t.Fatal("lenient parse returned no error and no sample")
				}
				if rep.Rows != ls.Data.Steps() {
					t.Fatalf("report says %d rows, sample has %d", rep.Rows, ls.Data.Steps())
				}
				if schema != nil && len(ls.Data.Metrics) != len(schema) {
					t.Fatalf("lenient parse with schema returned %d metrics, want %d", len(ls.Data.Metrics), len(schema))
				}
			}
			// Strict success must imply lenient success on the same bytes.
			if err == nil && lerr != nil {
				t.Fatalf("strict parse succeeded but lenient failed: %v", lerr)
			}
		}
	})
}

func TestLenientRecoversDamagedFile(t *testing.T) {
	schema := fuzzSchema()
	src := strings.Join([]string{
		"#meta system=volta app=CG input=0 nodes=1 node=0 anomaly=healthy intensity=0 runid=7",
		"#Time,cpu.user,mem.free,net.tx",
		"0,1.5,2.5,3",
		"1,1.6,,4",        // missing cell
		"2,garbage,2.7,5", // bad cell
		"3,1.8,2.8",       // short row -> skipped
		"4,1.9,2.9,6",
	}, "\n") + "\n"

	if _, _, err := ReadCSV(strings.NewReader(src), schema); err == nil {
		t.Fatal("strict parse should fail on the bad cell")
	} else if pe, ok := err.(*ParseError); !ok {
		t.Fatalf("strict error is %T, want *ParseError", err)
	} else if pe.Line != 5 || pe.Col != 2 {
		t.Fatalf("strict error located at line %d col %d, want line 5 col 2", pe.Line, pe.Col)
	}

	s, cols, rep, err := ReadCSVOpts(strings.NewReader(src), schema, Options{Lenient: true, File: "node0.csv"})
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if s.Data.Steps() != 4 {
		t.Fatalf("kept %d rows, want 4", s.Data.Steps())
	}
	if rep.Rows != 4 || rep.RowsSkipped != 1 || rep.CellsMissing != 1 || rep.CellsBad != 1 {
		t.Fatalf("report = %+v, want Rows 4 RowsSkipped 1 CellsMissing 1 CellsBad 1", rep)
	}
	if len(rep.Errors) == 0 || !strings.Contains(rep.Errors[0].Error(), "node0.csv:") {
		t.Fatalf("structured errors missing file:line: %v", rep.Errors)
	}
	if len(cols) != len(schema) {
		t.Fatalf("got %d columns, want %d", len(cols), len(schema))
	}
	if !math.IsNaN(s.Data.Metrics[1][1]) || !math.IsNaN(s.Data.Metrics[0][2]) {
		t.Fatal("missing/bad cells should be NaN")
	}
	if s.Meta.RunID != 7 {
		t.Fatalf("meta not parsed: %+v", s.Meta)
	}
}

func TestRepeatedTimeHeader(t *testing.T) {
	// Store rollover / concatenated files repeat the header; a narrower
	// second header must not re-shape rows collected under the first
	// (this used to panic building the output block).
	src := "#Time,a,b\n0,1,2\n#Time,a\n1,1\n2,3,4\n"

	if _, _, err := ReadCSV(strings.NewReader(src), nil); err == nil {
		t.Fatal("strict parse should reject a repeated #Time header")
	}

	s, cols, rep, err := ReadCSVOpts(strings.NewReader(src), nil, Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if len(cols) != 2 || len(s.Data.Metrics) != 2 {
		t.Fatalf("output shape %d cols / %d metrics, want the first header's 2", len(cols), len(s.Data.Metrics))
	}
	// Rows 0 and 2 match the original header; row 1 (shaped for the
	// rejected second header) is skipped with accounting.
	if s.Data.Steps() != 2 || rep.RowsSkipped != 1 {
		t.Fatalf("kept %d rows, skipped %d; want 2 kept, 1 skipped", s.Data.Steps(), rep.RowsSkipped)
	}
	found := false
	for _, e := range rep.Errors {
		if strings.Contains(e.Msg, "repeated #Time header") {
			found = true
		}
	}
	if !found {
		t.Fatalf("repeated header left no trace in the report: %v", rep.Errors)
	}

	// A corrupt duplicate #meta must not wipe earlier provenance.
	src = "#meta runid=7\n#Time,a\n0,1\n#meta runid=oops\n1,2\n"
	s, _, _, err = ReadCSVOpts(strings.NewReader(src), nil, Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if s.Meta.RunID != 7 {
		t.Fatalf("corrupt duplicate #meta wiped provenance: %+v", s.Meta)
	}
}

func TestLenientColumnMapping(t *testing.T) {
	schema := fuzzSchema()
	// Columns permuted, one schema column missing, one unknown column.
	src := "#Time,net.tx,surprise.metric,cpu.user\n0,3,99,1\n1,4,98,2\n"
	s, _, rep, err := ReadCSVOpts(strings.NewReader(src), schema, Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if len(s.Data.Metrics) != 3 {
		t.Fatalf("want schema-shaped output, got %d metrics", len(s.Data.Metrics))
	}
	if s.Data.Metrics[0][0] != 1 || s.Data.Metrics[2][1] != 4 {
		t.Fatal("permuted columns not matched by name")
	}
	for _, v := range s.Data.Metrics[1] {
		if !math.IsNaN(v) {
			t.Fatal("missing schema column should be all-NaN")
		}
	}
	if len(rep.MissingCols) != 1 || rep.MissingCols[0] != "mem.free" {
		t.Fatalf("MissingCols = %v, want [mem.free]", rep.MissingCols)
	}

	// Strict mode rejects the same file.
	if _, _, err := ReadCSV(strings.NewReader(src), schema); err == nil {
		t.Fatal("strict parse should reject mismatched columns")
	}
}

func TestMaxErrorsCapsRecordingNotParsing(t *testing.T) {
	var b strings.Builder
	b.WriteString("#Time,cpu.user\n")
	for i := 0; i < 50; i++ {
		b.WriteString("0,bad\n")
	}
	s, _, rep, err := ReadCSVOpts(strings.NewReader(b.String()), nil, Options{Lenient: true, MaxErrors: 5})
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if len(rep.Errors) != 5 {
		t.Fatalf("recorded %d errors, want cap of 5", len(rep.Errors))
	}
	if rep.CellsBad != 50 {
		t.Fatalf("accounted %d bad cells, want all 50", rep.CellsBad)
	}
	if s.Data.Steps() != 50 {
		t.Fatalf("kept %d rows, want 50", s.Data.Steps())
	}
}

func TestReadRunDirLenientSkipsDeadFiles(t *testing.T) {
	dir := t.TempDir()
	schema := fuzzSchema()
	good := "#meta node=0\n#Time,cpu.user,mem.free,net.tx\n0,1,2,3\n1,4,5,6\n"
	dead := "complete nonsense\nno header here\n"
	if err := os.WriteFile(filepath.Join(dir, "node0.csv"), []byte(good), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "node1.csv"), []byte(dead), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := ReadRunDir(dir, schema); err == nil {
		t.Fatal("strict directory read should fail on the dead file")
	}

	samples, rep, err := ReadRunDirOpts(dir, schema, Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient directory read failed: %v", err)
	}
	if len(samples) != 1 || samples[0].Meta.Node != 0 {
		t.Fatalf("want just node0, got %d samples", len(samples))
	}
	if len(rep.Errors) == 0 {
		t.Fatal("dead file left no trace in the merged report")
	}
	found := false
	for _, e := range rep.Errors {
		if strings.Contains(e.Error(), "node1.csv") {
			found = true
		}
	}
	if !found {
		t.Fatalf("merged report does not name the dead file: %v", rep.Errors)
	}

	// A directory of only dead files still fails, even leniently.
	deadDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(deadDir, "node0.csv"), []byte(dead), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadRunDirOpts(deadDir, schema, Options{Lenient: true}); err == nil {
		t.Fatal("all-dead directory should still error")
	}
}
