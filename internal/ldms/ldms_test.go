package ldms

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"albadross/internal/telemetry"
)

func sampleRun(t *testing.T) ([]*telemetry.NodeSample, *telemetry.SystemSpec) {
	t.Helper()
	sys := telemetry.Volta(27)
	samples, err := sys.GenerateRun(telemetry.RunConfig{
		App: sys.App("LU"), Input: 1, Nodes: 2, Steps: 100, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return samples, sys
}

func TestCSVRoundTrip(t *testing.T) {
	samples, sys := sampleRun(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, samples[0], sys.Metrics); err != nil {
		t.Fatal(err)
	}
	back, cols, err := ReadCSV(bytes.NewReader(buf.Bytes()), sys.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != len(sys.Metrics) {
		t.Fatalf("columns = %d", len(cols))
	}
	if back.Meta != samples[0].Meta {
		t.Fatalf("meta mismatch: %+v vs %+v", back.Meta, samples[0].Meta)
	}
	if back.Data.Steps() != samples[0].Data.Steps() {
		t.Fatalf("steps = %d, want %d", back.Data.Steps(), samples[0].Data.Steps())
	}
	for mi := range sys.Metrics {
		for ti := range back.Data.Metrics[mi] {
			a := back.Data.Metrics[mi][ti]
			b := samples[0].Data.Metrics[mi][ti]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("metric %d step %d: %v vs %v", mi, ti, a, b)
			}
		}
	}
}

func TestReadCSVWithoutSchema(t *testing.T) {
	in := "#Time,cpu.user,mem.free\n0,1.5,2e9\n1,,2.1e9\n"
	s, cols, err := ReadCSV(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || cols[0] != "cpu.user" {
		t.Fatalf("cols = %v", cols)
	}
	if s.Data.Steps() != 2 {
		t.Fatalf("steps = %d", s.Data.Steps())
	}
	if !math.IsNaN(s.Data.Metrics[0][1]) {
		t.Fatal("empty cell should be NaN")
	}
	if s.Data.Metrics[1][0] != 2e9 {
		t.Fatalf("value = %v", s.Data.Metrics[1][0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"no header":      "0,1,2\n",
		"empty":          "",
		"ragged row":     "#Time,a,b\n0,1\n",
		"bad float":      "#Time,a\n0,xyz\n",
		"bad meta":       "#meta nodes=abc\n#Time,a\n0,1\n",
		"malformed meta": "#meta garbage\n#Time,a\n0,1\n",
		"header only":    "#Time,a\n",
	}
	for name, in := range cases {
		if _, _, err := ReadCSV(strings.NewReader(in), nil); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadCSVSchemaMismatch(t *testing.T) {
	schema := telemetry.BuildSchema(27)
	in := "#Time,bogus\n0,1\n"
	if _, _, err := ReadCSV(strings.NewReader(in), schema); err == nil {
		t.Fatal("column count mismatch should error")
	}
	// Right count, wrong name.
	var b strings.Builder
	b.WriteString("#Time")
	for range schema {
		b.WriteString(",wrong")
	}
	b.WriteString("\n0")
	for range schema {
		b.WriteString(",1")
	}
	b.WriteString("\n")
	if _, _, err := ReadCSV(strings.NewReader(b.String()), schema); err == nil {
		t.Fatal("column name mismatch should error")
	}
}

func TestRunDirRoundTrip(t *testing.T) {
	samples, sys := sampleRun(t)
	dir := t.TempDir()
	if err := WriteRunDir(dir, samples, sys.Metrics); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRunDir(dir, sys.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(samples) {
		t.Fatalf("samples = %d, want %d", len(back), len(samples))
	}
	for i := range back {
		if back[i].Meta.Node != i {
			t.Fatalf("node order wrong: %d at %d", back[i].Meta.Node, i)
		}
	}
	if _, err := ReadRunDir(t.TempDir(), sys.Metrics); err == nil {
		t.Fatal("empty dir should error")
	}
}

func TestWriteCSVValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, nil, nil); err == nil {
		t.Fatal("nil sample should error")
	}
	samples, sys := sampleRun(t)
	if err := WriteCSV(&buf, samples[0], sys.Metrics[:3]); err == nil {
		t.Fatal("schema mismatch should error")
	}
}

func TestMetaUnknownKeysTolerated(t *testing.T) {
	in := "#meta system=x future_key=42\n#Time,a\n0,1\n"
	s, _, err := ReadCSV(strings.NewReader(in), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Meta.System != "x" {
		t.Fatal("known keys should still parse")
	}
}
