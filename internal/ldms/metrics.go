package ldms

import "albadross/internal/obs"

// Parse-stage metrics, registered on the default obs registry at import
// time and documented in docs/OBSERVABILITY.md. ReadCSVOpts drives all
// of them, so both strict and lenient parses (and ReadRunDirOpts, which
// delegates per file) are accounted.
var (
	parseLatency = obs.NewHistogram(obs.Opts{
		Name: "ldms_parse_seconds",
		Help: "Wall time of one LDMS CSV parse (ReadCSVOpts call).",
		Unit: "seconds",
	})
	parseFiles = obs.NewCounterVec(obs.Opts{
		Name: "ldms_parse_files_total",
		Help: "LDMS CSV parses by outcome (ok or error).",
		Unit: "files",
	}, "status")
	parseRows = obs.NewCounter(obs.Opts{
		Name: "ldms_rows_total",
		Help: "Data rows kept by the LDMS parser.",
		Unit: "rows",
	})
	parseRowsSkipped = obs.NewCounter(obs.Opts{
		Name: "ldms_rows_skipped_total",
		Help: "Malformed data rows dropped by the lenient LDMS parser.",
		Unit: "rows",
	})
	parseCellsMissing = obs.NewCounter(obs.Opts{
		Name: "ldms_cells_missing_total",
		Help: "Empty CSV cells stored as NaN (ordinary LDMS missing samples).",
		Unit: "cells",
	})
	parseCellsBad = obs.NewCounter(obs.Opts{
		Name: "ldms_cells_bad_total",
		Help: "Non-empty unparseable CSV cells stored as NaN by the lenient parser.",
		Unit: "cells",
	})
	parseErrors = obs.NewCounter(obs.Opts{
		Name: "ldms_parse_errors_total",
		Help: "Structured parse errors recorded in ParseReports (capped per file by Options.MaxErrors).",
		Unit: "errors",
	})
)

// observeParse folds one finished parse into the metrics; rep is the
// report ReadCSVOpts accumulated (always non-nil there) and failed marks
// a parse that returned an error.
func observeParse(rep *ParseReport, failed bool) {
	status := "ok"
	if failed {
		status = "error"
	}
	parseFiles.With(status).Inc()
	parseRows.Add(uint64(rep.Rows))
	parseRowsSkipped.Add(uint64(rep.RowsSkipped))
	parseCellsMissing.Add(uint64(rep.CellsMissing))
	parseCellsBad.Add(uint64(rep.CellsBad))
	parseErrors.Add(uint64(len(rep.Errors)))
}
