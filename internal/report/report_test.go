package report

import (
	"math"
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	s := []Series{
		{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
	}
	out := Chart("title", s, 40, 10)
	if !strings.HasPrefix(out, "title\n") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "+ down") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("glyphs missing")
	}
	// Axis labels: min and max y.
	if !strings.Contains(out, "3") || !strings.Contains(out, "0") {
		t.Fatal("axis labels missing")
	}
	lines := strings.Split(out, "\n")
	// 10 grid rows + axis + x labels + title + 2 legend rows.
	if len(lines) < 14 {
		t.Fatalf("output too short: %d lines", len(lines))
	}
}

func TestChartRisingSeriesTopRight(t *testing.T) {
	s := []Series{{Name: "f1", X: []float64{0, 100}, Y: []float64{0.2, 0.9}}}
	out := Chart("", s, 20, 5)
	rows := strings.Split(out, "\n")
	top := rows[0]
	bottom := rows[4]
	// The max point lands in the top row's right side, the min in the
	// bottom row's left side.
	if !strings.Contains(top, "*") {
		t.Fatalf("top row has no point:\n%s", out)
	}
	if !strings.Contains(bottom, "*") {
		t.Fatalf("bottom row has no point:\n%s", out)
	}
	if strings.Index(top, "*") < strings.Index(bottom, "*") {
		t.Fatalf("rising series should end top-right:\n%s", out)
	}
}

func TestChartDegenerateInputs(t *testing.T) {
	if out := Chart("t", nil, 40, 10); !strings.Contains(out, "no data") {
		t.Fatal("empty input should say so")
	}
	// All-NaN series.
	s := []Series{{Name: "n", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}}
	if out := Chart("", s, 40, 10); !strings.Contains(out, "no data") {
		t.Fatal("all-NaN should say no data")
	}
	// Constant series must not divide by zero.
	s = []Series{{Name: "c", X: []float64{1, 1}, Y: []float64{2, 2}}}
	out := Chart("", s, 40, 10)
	if !strings.Contains(out, "*") {
		t.Fatal("constant series should still plot")
	}
	// Tiny dimensions clamp.
	out = Chart("", s, 1, 1)
	if len(out) == 0 {
		t.Fatal("clamped chart should render")
	}
}

func TestChartMismatchedLengths(t *testing.T) {
	s := []Series{{Name: "m", X: []float64{0, 1, 2}, Y: []float64{5}}}
	out := Chart("", s, 30, 5)
	if !strings.Contains(out, "*") {
		t.Fatal("should plot the overlapping prefix")
	}
}

func TestF1Curves(t *testing.T) {
	series := F1Curves(
		[]string{"a", "b"},
		[][]int{{0, 1, 2}, {0, 1}},
		[][]float64{{0.1, 0.2, 0.3}, {0.4, 0.5}},
	)
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	if series[0].X[2] != 2 || series[0].Y[2] != 0.3 {
		t.Fatal("adaptation wrong")
	}
	if len(series[1].X) != 2 {
		t.Fatal("short series length wrong")
	}
	// Ragged inputs truncate safely.
	series = F1Curves([]string{"a", "b"}, [][]int{{0}}, [][]float64{{0.1}})
	if len(series) != 1 {
		t.Fatal("missing data should truncate the series list")
	}
}
