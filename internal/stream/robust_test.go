package stream

import (
	"math"
	"testing"

	"albadross/internal/chaos"
	"albadross/internal/features/mvts"
	"albadross/internal/telemetry"
	"albadross/internal/ts"
)

func newRobustStreamer(t *testing.T, cfg Config) (*Streamer, *countingDiagnoser, []telemetry.Metric) {
	t.Helper()
	schema := telemetry.BuildSchema(9)
	cd := &countingDiagnoser{}
	cfg.Schema = schema
	cfg.Extractor = mvts.Extractor{}
	if cfg.Diagnose == nil {
		cfg.Diagnose = cd.diagnose
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, cd, schema
}

func reading(schema []telemetry.Metric, i int) []float64 {
	row := make([]float64, len(schema))
	for m := range row {
		row[m] = float64(i + m)
	}
	return row
}

func TestPushAtInOrderMatchesPush(t *testing.T) {
	a, cda, schema := newRobustStreamer(t, Config{Window: 16, Stride: 8, Reorder: 4})
	b, cdb, _ := newRobustStreamer(t, Config{Window: 16, Stride: 8})
	for i := 0; i < 40; i++ {
		if _, err := a.PushAt(100+i, reading(schema, i)); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Push(reading(schema, i)); err != nil {
			t.Fatal(err)
		}
	}
	if cda.calls != cdb.calls {
		t.Fatalf("PushAt emitted %d diagnoses, Push emitted %d", cda.calls, cdb.calls)
	}
	st := a.Stats()
	if st.Pushed != 40 || st.Duplicates != 0 || st.Late != 0 || st.GapsFilled != 0 {
		t.Fatalf("clean in-order feed left dirty stats: %+v", st)
	}
}

func TestPushAtReordersWithinHorizon(t *testing.T) {
	s, _, schema := newRobustStreamer(t, Config{Window: 8, Stride: 8, Reorder: 4})
	// Anchor on 0, then deliver 1..15 with adjacent pairs swapped:
	// 0, 2, 1, 4, 3, ..., 14, 13, 15. All jitter is within the horizon.
	order := []int{0}
	for i := 1; i < 15; i += 2 {
		order = append(order, i+1, i)
	}
	order = append(order, 15)
	var got []*Diagnosis
	for _, tt := range order {
		ds, err := s.PushAt(tt, reading(schema, tt))
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ds...)
	}
	st := s.Stats()
	if st.Late != 0 || st.GapsFilled != 0 || st.Duplicates != 0 {
		t.Fatalf("in-horizon jitter mis-accounted: %+v", st)
	}
	if len(got) != 2 || st.Windows != 2 {
		t.Fatalf("want 2 tumbling windows, got %d (stats %+v)", len(got), st)
	}
}

func TestPushAtDuplicatesAndLate(t *testing.T) {
	s, _, schema := newRobustStreamer(t, Config{Window: 8, Stride: 8, Reorder: 2})
	for i := 0; i < 6; i++ {
		if _, err := s.PushAt(i, reading(schema, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Timestamp 3 again: a duplicate of a committed slot arrives as "late"
	// (the frontier has moved past it).
	if _, err := s.PushAt(3, reading(schema, 3)); err != nil {
		t.Fatal(err)
	}
	// A pending-slot duplicate: deliver 8 (buffered, 7 missing), then 8 again.
	if _, err := s.PushAt(8, reading(schema, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PushAt(8, reading(schema, 8)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Late != 1 {
		t.Fatalf("late = %d, want 1", st.Late)
	}
	if st.Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", st.Duplicates)
	}
}

func TestPushAtFillsGapsBeyondHorizon(t *testing.T) {
	s, _, schema := newRobustStreamer(t, Config{Window: 8, Stride: 8, Reorder: 3, Gap: GapHoldLast})
	// Timestamps 0,1,2 then jump to 10: slots 3..6 fall out of the
	// horizon as maxT advances and must be synthesized as gap rows.
	for _, tt := range []int{0, 1, 2, 10, 11, 12} {
		if _, err := s.PushAt(tt, reading(schema, tt)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.GapsFilled == 0 {
		t.Fatalf("no gaps synthesized: %+v", st)
	}
	// Flush drains the rest (slots 7..9 plus buffered 10..12).
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.GapsFilled != 7 {
		t.Fatalf("gaps filled = %d, want 7 (slots 3..9)", st.GapsFilled)
	}
	if got := s.Samples(); got != 13 {
		t.Fatalf("committed %d samples, want 13 (0..12)", got)
	}
}

func TestImplausibleTimestampDropped(t *testing.T) {
	// A corrupt far-future timestamp must be dropped, not trusted: the
	// default MaxJump (4*Window+Reorder) would otherwise synthesize one
	// gap row per skipped timestep up to it.
	s, _, schema := newRobustStreamer(t, Config{Window: 8, Stride: 8, Reorder: 2})
	for i := 0; i < 4; i++ {
		if _, err := s.PushAt(i, reading(schema, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.PushAt(1_000_000_000, reading(schema, 0)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Implausible != 1 {
		t.Fatalf("implausible = %d, want 1", st.Implausible)
	}
	if st.GapsFilled != 0 {
		t.Fatalf("corrupt timestamp synthesized %d gap rows", st.GapsFilled)
	}
	// The stream recovers: in-sequence readings keep committing.
	for i := 4; i < 8; i++ {
		if _, err := s.PushAt(i, reading(schema, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := s.Samples(); got != 8 {
		t.Fatalf("committed %d samples, want 8", got)
	}

	// A jump at the cap is still trusted and gap-filled.
	s2, _, _ := newRobustStreamer(t, Config{Window: 8, Stride: 8, Reorder: 2})
	if _, err := s2.PushAt(0, reading(schema, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.PushAt(1+4*8+2, reading(schema, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Flush(); err != nil {
		t.Fatal(err)
	}
	st2 := s2.Stats()
	if st2.Implausible != 0 || st2.GapsFilled != 4*8+2 {
		t.Fatalf("in-cap jump mishandled: %+v", st2)
	}

	if _, err := New(Config{Schema: schema, Extractor: mvts.Extractor{},
		Diagnose: (&countingDiagnoser{}).diagnose, Window: 8, Reorder: 4, MaxJump: 2}); err == nil {
		t.Fatal("MaxJump below the reorder horizon should be rejected")
	}
}

func TestClockSkewIsAnchoredAway(t *testing.T) {
	s, cd, schema := newRobustStreamer(t, Config{Window: 8, Stride: 8, Reorder: 2})
	// A constant +1e6 skew must behave exactly like t starting at 0.
	for i := 0; i < 16; i++ {
		if _, err := s.PushAt(1_000_000+i, reading(schema, i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.GapsFilled != 0 || st.Late != 0 || cd.calls != 2 {
		t.Fatalf("skewed feed mishandled: stats %+v, calls %d", st, cd.calls)
	}
}

func TestGapAbstainPolicy(t *testing.T) {
	s, cd, schema := newRobustStreamer(t, Config{Window: 8, Stride: 8, Gap: GapAbstain, MaxMissing: 0.3})
	// First window: half the cells missing -> abstain.
	for i := 0; i < 8; i++ {
		row := reading(schema, i)
		if i%2 == 0 {
			for m := range row {
				row[m] = math.NaN()
			}
		}
		d, err := s.Push(row)
		if err != nil {
			t.Fatal(err)
		}
		if i == 7 {
			if d == nil || !d.Abstained || d.Label != AbstainLabel {
				t.Fatalf("want abstention, got %+v", d)
			}
			if d.MissingFrac < 0.4 || d.MissingFrac > 0.6 {
				t.Fatalf("missing frac = %v, want ~0.5", d.MissingFrac)
			}
			if d.Confidence != 0 {
				t.Fatalf("abstention carries confidence %v", d.Confidence)
			}
		}
	}
	if cd.calls != 0 {
		t.Fatal("abstained window must not reach the classifier")
	}
	// Second window: clean -> diagnosed.
	var last *Diagnosis
	for i := 8; i < 16; i++ {
		d, err := s.Push(reading(schema, i))
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			last = d
		}
	}
	if last == nil || last.Abstained || last.Label != "healthy" {
		t.Fatalf("clean window should diagnose, got %+v", last)
	}
	st := s.Stats()
	if st.Windows != 2 || st.Abstained != 1 {
		t.Fatalf("stats = %+v, want Windows 2 Abstained 1", st)
	}
}

func TestNonFiniteConfidenceAbstains(t *testing.T) {
	s, _, schema := newRobustStreamer(t, Config{
		Window: 8, Stride: 8,
		Diagnose: func([]float64) (string, float64, error) { return "cpuoccupy", math.NaN(), nil },
	})
	var got *Diagnosis
	for i := 0; i < 8; i++ {
		d, err := s.Push(reading(schema, i))
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			got = d
		}
	}
	if got == nil || !got.Abstained || got.Label != AbstainLabel {
		t.Fatalf("NaN confidence should abstain, got %+v", got)
	}
	if st := s.Stats(); st.Abstained != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHoldLastRepairOnDegradedWindow(t *testing.T) {
	s, cd, schema := newRobustStreamer(t, Config{Window: 8, Stride: 8, Gap: GapHoldLast})
	// One metric entirely NaN, another frozen; features must stay finite
	// (the counting diagnoser rejects Inf).
	for i := 0; i < 8; i++ {
		row := reading(schema, i)
		row[0] = math.NaN()
		row[1] = 42
		if _, err := s.Push(row); err != nil {
			t.Fatal(err)
		}
	}
	if cd.calls != 1 {
		t.Fatalf("degraded window should still diagnose, calls = %d", cd.calls)
	}
}

// TestChaoticFeedFullAccounting drives a streamer with the chaos
// injector's delivery stream (gaps, duplicates, reordering, skew) and
// checks the end-to-end contract: every completed window is diagnosed or
// abstained, nothing is silently dropped, and every confidence is
// finite.
func TestChaoticFeedFullAccounting(t *testing.T) {
	sys := telemetry.Volta(9)
	samples, err := sys.GenerateRun(telemetry.RunConfig{
		App: sys.App("CG"), Input: 0, Nodes: 1, Steps: 240, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts.InterpolateAll(samples[0].Data)
	inj, err := chaos.New(5,
		chaos.Fault{Kind: chaos.GapBurst, Intensity: 0.6},
		chaos.Fault{Kind: chaos.Duplicate, Intensity: 0.4},
		chaos.Fault{Kind: chaos.Reorder, Intensity: 0.6},
		chaos.Fault{Kind: chaos.ClockSkew, Intensity: 0.5},
		chaos.Fault{Kind: chaos.Drop, Intensity: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	feed := inj.DeliverStream(samples[0].Data)

	cd := &countingDiagnoser{}
	s, err := New(Config{
		Schema:     sys.Metrics,
		Extractor:  mvts.Extractor{},
		Diagnose:   cd.diagnose,
		Window:     32,
		Stride:     16,
		Reorder:    8,
		Gap:        GapAbstain,
		MaxMissing: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []*Diagnosis
	for _, r := range feed {
		ds, err := s.PushAt(r.T, r.Values)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ds...)
	}
	tail, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, tail...)

	st := s.Stats()
	if len(got) != st.Windows {
		t.Fatalf("returned %d diagnoses for %d completed windows", len(got), st.Windows)
	}
	if st.Windows == 0 {
		t.Fatal("chaotic feed completed no windows")
	}
	diagnosed := 0
	for _, d := range got {
		if math.IsNaN(d.Confidence) || math.IsInf(d.Confidence, 0) {
			t.Fatalf("non-finite confidence: %+v", d)
		}
		if math.IsNaN(d.MissingFrac) {
			t.Fatalf("non-finite missing fraction: %+v", d)
		}
		if !d.Abstained {
			diagnosed++
		}
	}
	if diagnosed+st.Abstained != st.Windows {
		t.Fatalf("windows %d != diagnosed %d + abstained %d", st.Windows, diagnosed, st.Abstained)
	}
	// Delivery accounting covers the whole feed.
	if st.Pushed+st.Duplicates+st.Late != len(feed) {
		t.Fatalf("feed of %d readings accounted as pushed %d + dup %d + late %d",
			len(feed), st.Pushed, st.Duplicates, st.Late)
	}
}
