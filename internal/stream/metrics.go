package stream

import "albadross/internal/obs"

// Streaming-stage metrics, registered on the default obs registry at
// import time and documented in docs/OBSERVABILITY.md. They mirror the
// per-streamer Stats counters but aggregate across every Streamer in
// the process (Stats stays the per-instance view and is reset by Reset;
// the metrics are cumulative).
var (
	windowLatency = obs.NewHistogram(obs.Opts{
		Name: "stream_window_seconds",
		Help: "Wall time to repair, extract and diagnose one completed window.",
		Unit: "seconds",
	})
	reorderDepth = obs.NewGauge(obs.Opts{
		Name: "stream_reorder_depth",
		Help: "Readings currently held in the reordering buffer (last PushAt).",
		Unit: "readings",
	})
	pushedTotal = obs.NewCounter(obs.Opts{
		Name: "stream_pushed_total",
		Help: "Readings accepted into the window sequence (gap fills excluded).",
		Unit: "readings",
	})
	duplicatesTotal = obs.NewCounter(obs.Opts{
		Name: "stream_duplicates_total",
		Help: "Readings dropped because their timestamp was already delivered.",
		Unit: "readings",
	})
	lateTotal = obs.NewCounter(obs.Opts{
		Name: "stream_late_total",
		Help: "Readings dropped because they arrived after their slot was committed.",
		Unit: "readings",
	})
	implausibleTotal = obs.NewCounter(obs.Opts{
		Name: "stream_implausible_total",
		Help: "Readings dropped for jumping more than MaxJump past the commit frontier.",
		Unit: "readings",
	})
	gapsFilledTotal = obs.NewCounter(obs.Opts{
		Name: "stream_gaps_filled_total",
		Help: "All-NaN rows synthesized for timestamps that never arrived.",
		Unit: "rows",
	})
	windowsTotal = obs.NewCounter(obs.Opts{
		Name: "stream_windows_total",
		Help: "Completed windows (diagnosed plus abstained).",
		Unit: "windows",
	})
	abstainedTotal = obs.NewCounter(obs.Opts{
		Name: "stream_abstained_total",
		Help: "Windows refused under GapAbstain or on a non-finite classifier confidence.",
		Unit: "windows",
	})
)
