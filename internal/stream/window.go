package stream

// Windower is the delivery half of a Streamer, extracted so the
// composable stage graph (internal/pipeline) and the fused streaming
// facade (Streamer) share one implementation of the delicate parts:
// the bounded reordering buffer, duplicate/late/implausible filtering,
// gap-row synthesis, the window ring, and stride boundaries. A Windower
// knows nothing about features or models — it turns an arrival sequence
// into committed rows and completed raw windows, delivered synchronously
// through two callbacks:
//
//   - onCommit fires once per committed row (synthesized gap rows
//     included), in commit order, before any window that row completes;
//   - onWindow fires at each stride boundary with the current window
//     ring and the timestep index of its last sample. The rows passed to
//     onWindow are never mutated afterwards, but the slice itself is the
//     live ring — consumers that retain it must copy the header.
//
// The callback shape is load-bearing for replay determinism: a single
// PushAt can release several buffered rows and cross a window boundary
// mid-drain, and incremental feature state must be rendered at the exact
// boundary commit — not after the drain finishes. Returning completed
// windows from PushAt instead would observe feature state a few commits
// too late.

import (
	"fmt"
	"math"
)

// WindowerConfig sizes a Windower. The fields mirror the identically
// named Config knobs on the Streamer; see Config for the full
// semantics.
type WindowerConfig struct {
	// Metrics is the reading width (number of metrics per row).
	Metrics int
	// Window is the diagnosis window length in samples (>= 8).
	Window int
	// Stride is the hop between window completions; 0 defaults to
	// Window (tumbling windows).
	Stride int
	// Reorder is the reordering-buffer horizon for PushAt.
	Reorder int
	// MaxJump bounds the plausible forward timestamp jump; 0 defaults
	// to 4*Window+Reorder.
	MaxJump int
}

// Windower sequences one shard's arrivals into committed rows and
// completed windows. Not safe for concurrent use; callers own the
// locking.
type Windower struct {
	cfg      WindowerConfig
	onCommit func(row []float64)
	onWindow func(rows [][]float64, end int) error

	buf   [][]float64 // ring of the last Window readings, in commit order
	count int         // total samples committed
	since int         // samples since the last window

	// Timestamped-path state (PushAt).
	anchored bool
	nextT    int // next claimed timestep to commit
	pending  map[int][]float64
	maxT     int // highest claimed timestep buffered or committed

	stats Stats // delivery + window counters; Abstained stays zero here
}

// NewWindower validates the configuration and returns a Windower wired
// to the given callbacks. Either callback may be nil (skipped).
func NewWindower(cfg WindowerConfig, onCommit func(row []float64), onWindow func(rows [][]float64, end int) error) (*Windower, error) {
	if cfg.Metrics <= 0 {
		return nil, fmt.Errorf("stream: windower needs a positive metric count, got %d", cfg.Metrics)
	}
	if cfg.Window < 8 {
		return nil, fmt.Errorf("stream: window %d too short (need >= 8)", cfg.Window)
	}
	if cfg.Stride <= 0 {
		cfg.Stride = cfg.Window
	}
	if cfg.Reorder < 0 {
		return nil, fmt.Errorf("stream: negative reorder horizon %d", cfg.Reorder)
	}
	if cfg.MaxJump == 0 {
		cfg.MaxJump = 4*cfg.Window + cfg.Reorder
	}
	if cfg.MaxJump < cfg.Reorder {
		return nil, fmt.Errorf("stream: MaxJump %d below reorder horizon %d", cfg.MaxJump, cfg.Reorder)
	}
	return &Windower{
		cfg:      cfg,
		onCommit: onCommit,
		onWindow: onWindow,
		pending:  map[int][]float64{},
	}, nil
}

// Config returns the validated configuration (defaults resolved).
func (w *Windower) Config() WindowerConfig { return w.cfg }

// Push appends one row in arrival order (NaN marks missing metrics),
// bypassing the reordering buffer. The row is copied.
func (w *Windower) Push(values []float64) error {
	if len(values) != w.cfg.Metrics {
		return fmt.Errorf("stream: reading has %d metrics, schema %d", len(values), w.cfg.Metrics)
	}
	w.stats.Pushed++
	pushedTotal.Inc()
	return w.commit(append([]float64{}, values...))
}

// PushAt delivers one timestamped row through the bounded reordering
// buffer: duplicates, late arrivals and implausible timestamp jumps are
// dropped with accounting, and the first accepted reading anchors the
// timestamp origin. The row is copied.
func (w *Windower) PushAt(t int, values []float64) error {
	if len(values) != w.cfg.Metrics {
		return fmt.Errorf("stream: reading has %d metrics, schema %d", len(values), w.cfg.Metrics)
	}
	if !w.anchored {
		w.anchored = true
		w.nextT = t
		w.maxT = t - 1
	}
	if t < w.nextT {
		w.stats.Late++
		lateTotal.Inc()
		return nil
	}
	if t > w.nextT+w.cfg.MaxJump {
		w.stats.Implausible++
		implausibleTotal.Inc()
		return nil
	}
	if _, dup := w.pending[t]; dup {
		w.stats.Duplicates++
		duplicatesTotal.Inc()
		return nil
	}
	//albacheck:ignore hotalloc ownership copy of the caller's row; the reorder buffer must outlive the call
	w.pending[t] = append([]float64{}, values...)
	if t > w.maxT {
		w.maxT = t
	}
	w.stats.Pushed++
	pushedTotal.Inc()
	err := w.drain(false)
	reorderDepth.Set(float64(len(w.pending)))
	return err
}

// drain commits every pending reading that is either next in sequence
// or whose gap has outlived the reorder horizon (final drains every
// remaining slot).
func (w *Windower) drain(final bool) error {
	for len(w.pending) > 0 {
		row, ok := w.pending[w.nextT]
		if !ok {
			// The slot is missing; give it up only once no in-horizon
			// arrival could still fill it.
			if !final && w.maxT-w.nextT < w.cfg.Reorder {
				break
			}
			//albacheck:ignore hotalloc gap rows are retained in the window ring, so each needs its own backing; bounded by the reorder horizon
			row = make([]float64, w.cfg.Metrics)
			for i := range row {
				row[i] = math.NaN()
			}
			w.stats.GapsFilled++
			gapsFilledTotal.Inc()
		} else {
			delete(w.pending, w.nextT)
		}
		w.nextT++
		if err := w.commit(row); err != nil {
			return err
		}
	}
	return nil
}

// Flush drains the reordering buffer at end-of-stream, filling any
// remaining gaps.
func (w *Windower) Flush() error { return w.drain(true) }

// commit appends one in-sequence row to the window ring, notifies the
// commit callback, and fires the window callback when a stride boundary
// is crossed.
func (w *Windower) commit(row []float64) error {
	w.buf = append(w.buf, row)
	if len(w.buf) > w.cfg.Window {
		w.buf = w.buf[1:]
	}
	if w.onCommit != nil {
		w.onCommit(row)
	}
	w.count++
	w.since++
	if len(w.buf) < w.cfg.Window || w.since < w.cfg.Stride {
		return nil
	}
	w.since = 0
	w.stats.Windows++
	windowsTotal.Inc()
	if w.onWindow == nil {
		return nil
	}
	return w.onWindow(w.buf, w.count-1)
}

// Committed reports how many rows have been committed to the window
// sequence.
func (w *Windower) Committed() int { return w.count }

// PendingDepth reports how many accepted rows sit in the reordering
// buffer awaiting commit — the window-log replay lag of this shard.
func (w *Windower) PendingDepth() int { return len(w.pending) }

// Stats returns the delivery and window accounting so far (Abstained is
// always zero at this layer; classification owns abstention).
func (w *Windower) Stats() Stats { return w.stats }

// Reset clears all buffers and accounting (e.g. between application
// runs on the node).
func (w *Windower) Reset() {
	w.buf = w.buf[:0]
	w.count = 0
	w.since = 0
	w.anchored = false
	w.nextT = 0
	w.maxT = 0
	w.pending = map[int][]float64{}
	w.stats = Stats{}
}
