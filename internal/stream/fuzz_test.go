package stream

import (
	"math"
	"testing"

	"albadross/internal/telemetry"
)

// fuzzExtractor is a minimal features.Extractor: one mean feature per
// metric, cheap enough to run inside the fuzz loop.
type fuzzExtractor struct{}

func (fuzzExtractor) Name() string           { return "fuzzmean" }
func (fuzzExtractor) FeatureNames() []string { return []string{"mean"} }
func (fuzzExtractor) Extract(s []float64) []float64 {
	sum, n := 0.0, 0
	for _, v := range s {
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return []float64{math.NaN()}
	}
	return []float64{sum / float64(n)}
}

// FuzzPushAt drives the timestamped ingest path with arbitrary
// timestamp jumps, reorderings, duplicates and missing values, checking
// the streamer's accounting invariants instead of exact outputs:
// every accepted call lands in exactly one of the pushed/duplicate/
// late/implausible counters, and the streamer never panics or returns
// an unexpected error.
func FuzzPushAt(f *testing.F) {
	// Each reading is 3 bytes: signed timestamp delta, value seed, flags
	// (bit 0: NaN the first metric, bit 1: NaN the second).
	f.Add([]byte{1, 10, 0, 1, 20, 0, 1, 30, 0, 1, 40, 0})          // clean in-order feed
	f.Add([]byte{1, 10, 0, 0, 11, 0, 1, 12, 0})                    // duplicate timestamp
	f.Add([]byte{3, 10, 0, 253, 20, 0, 255, 30, 0})                // reorder within horizon
	f.Add([]byte{1, 10, 0, 120, 20, 0, 1, 30, 0})                  // MaxJump overshoot
	f.Add([]byte{1, 10, 0, 246, 20, 0})                            // far-backward (late)
	f.Add([]byte{1, 10, 1, 1, 20, 2, 1, 30, 3, 1, 40, 3})          // missing cells
	f.Add([]byte{5, 1, 0, 255, 2, 0, 255, 3, 0, 255, 4, 0, 5, 5, 0}) // gap then backfill

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := New(Config{
			Schema: []telemetry.Metric{
				{Name: "m0"}, {Name: "m1", Cumulative: true},
			},
			Extractor: fuzzExtractor{},
			Diagnose: func(features []float64) (string, float64, error) {
				return "healthy", 0.9, nil
			},
			Window:  8,
			Stride:  4,
			Reorder: 3,
			MaxJump: 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := 0
		for i := 0; i+2 < len(data); i += 3 {
			ts += int(int8(data[i]))
			v := float64(data[i+1])
			vals := []float64{v, v * 2}
			if data[i+2]&1 != 0 {
				vals[0] = math.NaN()
			}
			if data[i+2]&2 != 0 {
				vals[1] = math.NaN()
			}
			before := st.Stats()
			beforeAccounted := before.Pushed + before.Duplicates + before.Late + before.Implausible
			diags, err := st.PushAt(ts, vals)
			if err != nil {
				t.Fatalf("PushAt(%d, %v) after %d readings: %v", ts, vals, i/3, err)
			}
			after := st.Stats()
			afterAccounted := after.Pushed + after.Duplicates + after.Late + after.Implausible
			if afterAccounted != beforeAccounted+1 {
				t.Fatalf("PushAt(%d) accounted for %d readings, want exactly 1 (stats %+v -> %+v)",
					ts, afterAccounted-beforeAccounted, before, after)
			}
			for _, d := range diags {
				if d == nil {
					t.Fatal("nil diagnosis in PushAt result")
				}
				if !d.Abstained {
					if d.Label == "" {
						t.Fatalf("diagnosed window with empty label: %+v", d)
					}
					if math.IsNaN(d.Confidence) || math.IsInf(d.Confidence, 0) {
						t.Fatalf("non-finite confidence: %+v", d)
					}
				}
				if d.MissingFrac < 0 || d.MissingFrac > 1 {
					t.Fatalf("MissingFrac %v outside [0,1]", d.MissingFrac)
				}
			}
			// The commit frontier never retreats and gap synthesis stays
			// bounded by MaxJump per accepted reading.
			if after.GapsFilled < before.GapsFilled {
				t.Fatalf("GapsFilled went backward: %d -> %d", before.GapsFilled, after.GapsFilled)
			}
			if grew := after.GapsFilled - before.GapsFilled; grew > 40+3 {
				t.Fatalf("one PushAt synthesized %d gap rows, above the MaxJump+Reorder bound", grew)
			}
		}
	})
}
