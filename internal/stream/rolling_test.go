package stream

import (
	"math"
	"math/rand"
	"testing"

	"albadross/internal/features"
	"albadross/internal/features/mvts"
	"albadross/internal/features/rolling"
	"albadross/internal/telemetry"
)

// vecRecorder captures every feature vector handed to Diagnose.
type vecRecorder struct {
	vecs [][]float64
}

func (r *vecRecorder) diagnose(v []float64) (string, float64, error) {
	r.vecs = append(r.vecs, append([]float64(nil), v...))
	return "healthy", 0.9, nil
}

// feedReadings pushes n synthetic readings (metric m at step i gets a
// mix of trend, periodicity and noise; cumulative metrics grow) and
// optionally blanks cells to NaN with probability pMiss.
func feedReadings(t *testing.T, s *Streamer, schema []telemetry.Metric, n int, pMiss float64, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cum := telemetry.CumulativeFlags(schema)
	acc := make([]float64, len(schema))
	reading := make([]float64, len(schema))
	for i := 0; i < n; i++ {
		for m := range reading {
			v := 10*math.Sin(float64(i)/5+float64(m)) + rng.NormFloat64()
			if cum[m] {
				acc[m] += math.Abs(v)
				v = acc[m]
			}
			if pMiss > 0 && rng.Float64() < pMiss {
				v = math.NaN()
			}
			reading[m] = v
		}
		if _, err := s.Push(reading); err != nil {
			t.Fatal(err)
		}
	}
}

// assertVecsClose compares two captured vector streams within tol
// relative to each value's magnitude (at least 1).
func assertVecsClose(t *testing.T, ctx string, got, want [][]float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d windows vs %d", ctx, len(got), len(want))
	}
	for w := range got {
		if len(got[w]) != len(want[w]) {
			t.Fatalf("%s: window %d: dim %d vs %d", ctx, w, len(got[w]), len(want[w]))
		}
		for j := range got[w] {
			a, b := got[w][j], want[w][j]
			scale := 1.0
			if x := math.Abs(a); x > scale {
				scale = x
			}
			if x := math.Abs(b); x > scale {
				scale = x
			}
			if math.Abs(a-b) > tol*scale {
				t.Fatalf("%s: window %d feature %d: rolling %v, batch %v", ctx, w, j, a, b)
			}
		}
	}
}

// TestRollingMatchesBatchOnCleanFeed is the stream-level golden test:
// on a gap-free feed the incremental path must reproduce the batch
// hold-last path within 1e-9 on every emitted window (with no missing
// cells the causal and per-window repairs are identical, so the only
// difference left is rolling-vs-scratch extraction).
func TestRollingMatchesBatchOnCleanFeed(t *testing.T) {
	schema := telemetry.BuildSchema(9)
	build := func(roll bool) (*Streamer, *vecRecorder) {
		rec := &vecRecorder{}
		s, err := New(Config{
			Schema:    schema,
			Extractor: rolling.Extractor{},
			Diagnose:  rec.diagnose,
			Window:    32,
			Stride:    8,
			Gap:       GapHoldLast,
			Rolling:   roll,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, rec
	}
	sRoll, recRoll := build(true)
	sBatch, recBatch := build(false)
	feedReadings(t, sRoll, schema, 200, 0, 99)
	feedReadings(t, sBatch, schema, 200, 0, 99)
	if len(recRoll.vecs) == 0 {
		t.Fatal("no windows emitted")
	}
	assertVecsClose(t, "clean feed", recRoll.vecs, recBatch.vecs, 1e-9)
}

// TestRollingWithGapsMatchesCausalReference checks the gappy case
// against an explicit causal reference: hold-last repair over the whole
// stream, per-step counter differencing, then from-scratch extraction
// over each emitted window of the prepared series.
func TestRollingWithGapsMatchesCausalReference(t *testing.T) {
	schema := telemetry.BuildSchema(6)
	rec := &vecRecorder{}
	window, stride := 24, 6
	s, err := New(Config{
		Schema:    schema,
		Extractor: rolling.Extractor{},
		Diagnose:  rec.diagnose,
		Window:    window,
		Stride:    stride,
		Gap:       GapHoldLast,
		Rolling:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Replay the same pseudo-random feed twice: once into the streamer,
	// once into the reference preparation below.
	const n, seed = 150, 1234
	feedReadings(t, s, schema, n, 0.15, seed)

	rng := rand.New(rand.NewSource(seed))
	cum := telemetry.CumulativeFlags(schema)
	acc := make([]float64, len(schema))
	raw := make([][]float64, len(schema)) // [metric][step]
	for i := 0; i < n; i++ {
		for m := range schema {
			v := 10*math.Sin(float64(i)/5+float64(m)) + rng.NormFloat64()
			if cum[m] {
				acc[m] += math.Abs(v)
				v = acc[m]
			}
			if rng.Float64() < 0.15 {
				v = math.NaN()
			}
			raw[m] = append(raw[m], v)
		}
	}
	// Causal preparation: hold-last from 0, then per-step diffs for
	// cumulative metrics; prepared[c] pairs raw steps (c, c+1).
	ext := rolling.Extractor{}
	per := len(ext.FeatureNames())
	prepared := make([][]float64, len(schema))
	for m := range raw {
		last := 0.0
		rep := make([]float64, n)
		for i, v := range raw[m] {
			if !math.IsNaN(v) {
				last = v
			}
			rep[i] = last
		}
		p := make([]float64, n-1)
		for i := 1; i < n; i++ {
			if cum[m] {
				d := rep[i] - rep[i-1]
				if d < 0 {
					d = 0
				}
				p[i-1] = d
			} else {
				p[i-1] = rep[i]
			}
		}
		prepared[m] = p
	}
	var want [][]float64
	for end := window; end <= n; end += stride {
		vec := make([]float64, 0, per*len(schema))
		for m := range schema {
			vec = append(vec, ext.Extract(prepared[m][end-window:end-1])...)
		}
		features.Sanitize(vec)
		want = append(want, vec)
	}
	assertVecsClose(t, "gappy feed", rec.vecs, want, 1e-9)
}

// TestRollingConfigValidation pins the two Rolling preconditions: an
// incremental extractor and a causal gap policy.
func TestRollingConfigValidation(t *testing.T) {
	schema := telemetry.BuildSchema(4)
	diag := func([]float64) (string, float64, error) { return "x", 1, nil }
	if _, err := New(Config{
		Schema: schema, Extractor: mvts.Extractor{}, Diagnose: diag,
		Window: 16, Gap: GapHoldLast, Rolling: true,
	}); err == nil {
		t.Fatal("Rolling with a non-incremental extractor must be rejected")
	}
	if _, err := New(Config{
		Schema: schema, Extractor: rolling.Extractor{}, Diagnose: diag,
		Window: 16, Gap: GapInterpolate, Rolling: true,
	}); err == nil {
		t.Fatal("Rolling with GapInterpolate must be rejected")
	}
	if _, err := New(Config{
		Schema: schema, Extractor: rolling.Extractor{}, Diagnose: diag,
		Window: 16, Gap: GapAbstain, Rolling: true,
	}); err != nil {
		t.Fatalf("Rolling with GapAbstain should work: %v", err)
	}
}

// TestRollingAbstainAndReset checks the abstain accounting and Reset
// still behave on the rolling path.
func TestRollingAbstainAndReset(t *testing.T) {
	schema := telemetry.BuildSchema(4)
	rec := &vecRecorder{}
	s, err := New(Config{
		Schema: schema, Extractor: rolling.Extractor{}, Diagnose: rec.diagnose,
		Window: 16, Stride: 16, Gap: GapAbstain, MaxMissing: 0.3, Rolling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reading := make([]float64, len(schema))
	for i := 0; i < 16; i++ {
		for m := range reading {
			reading[m] = math.NaN() // fully missing window
		}
		d, derr := s.Push(reading)
		if derr != nil {
			t.Fatal(derr)
		}
		if i == 15 {
			if d == nil || !d.Abstained {
				t.Fatalf("fully-missing window should abstain, got %+v", d)
			}
		}
	}
	s.Reset()
	if s.Samples() != 0 {
		t.Fatalf("Samples after Reset = %d", s.Samples())
	}
	feedReadings(t, s, schema, 32, 0, 5)
	if got := s.Stats().Windows; got != 2 {
		t.Fatalf("windows after reset+refeed = %d, want 2", got)
	}
}
