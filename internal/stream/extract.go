package stream

// Window feature extraction, shared between the fused Streamer facade
// and the composable stage graph (internal/pipeline). Both paths must
// produce bitwise-identical vectors for the same committed rows — the
// record/replay golden fixture gates that — so the batch repair
// pipeline and the incremental rolling state live here, in exactly one
// place, instead of being reimplemented per consumer.

import (
	"math"

	"albadross/internal/features"
	"albadross/internal/telemetry"
	"albadross/internal/ts"
)

// MissingFraction reports the fraction of NaN cells across the rows of
// a completed window, before any repair.
func MissingFraction(rows [][]float64) float64 {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return 0
	}
	nan := 0
	for _, row := range rows {
		for _, v := range row {
			if math.IsNaN(v) {
				nan++
			}
		}
	}
	return float64(nan) / float64(len(rows)*len(rows[0]))
}

// BatchVector repairs, differences and feature-extracts one completed
// window from scratch: the gap policy fills missing cells (GapAbstain
// repairs like GapInterpolate — the abstention decision belongs to the
// caller), cumulative counters are differenced, and the extractor runs
// over every metric. This is the Streamer's non-rolling window path.
// The result is NOT sanitized; callers apply features.Sanitize so
// degraded windows stay finite.
func BatchVector(rows [][]float64, schema []telemetry.Metric, gap GapPolicy, ex features.Extractor) ([]float64, error) {
	nM := len(schema)
	block := ts.NewMultivariate(nM, len(rows))
	for t, row := range rows {
		for m := 0; m < nM; m++ {
			block.Metrics[m][t] = row[m]
		}
	}
	if gap == GapHoldLast {
		ts.HoldLastAll(block)
	} else {
		ts.InterpolateAll(block)
	}
	if err := ts.DiffCounters(block, telemetry.CumulativeFlags(schema)); err != nil {
		return nil, err
	}
	return features.ExtractSample(ex, block), nil
}

// IncrementalState is the rolling-extraction state of one shard's
// stream: per-metric rolling windows over the causally-prepared series
// (stream-global hold-last repair plus per-step counter differencing).
// Observe advances it by one committed row; Vector renders the current
// feature vector. Window length per roller is window-1 because counter
// differencing consumes one sample — each roller holds exactly window-1
// prepared values when the raw ring holds window readings.
type IncrementalState struct {
	roll []features.Rolling
	per  int // features per metric
	// cum caches telemetry.CumulativeFlags(schema).
	cum []bool
	// lastRep is the last delivered (non-NaN) value per metric, the
	// causal hold-last repair source; starts at 0, matching
	// ts.HoldLast's all-missing fallback.
	lastRep []float64
	// prevRep is the previous repaired reading per metric, the
	// differencing base; valid once havePrev is set.
	prevRep  []float64
	havePrev bool
}

// NewIncrementalState builds rolling state for every metric of the
// schema over a raw window of the given length.
func NewIncrementalState(inc features.Incremental, schema []telemetry.Metric, window int) *IncrementalState {
	nM := len(schema)
	st := &IncrementalState{
		roll:    make([]features.Rolling, nM),
		per:     len(inc.FeatureNames()),
		cum:     telemetry.CumulativeFlags(schema),
		lastRep: make([]float64, nM),
		prevRep: make([]float64, nM),
	}
	for m := range st.roll {
		st.roll[m] = inc.NewRolling(window - 1)
	}
	return st
}

// Observe advances the state by one committed reading: causal hold-last
// repair, per-step counter differencing (d = max(0, x[t] - x[t-1]),
// identical to ts.DiffCounters), then one Push per metric roller. The
// first reading only seeds the differencing base.
func (st *IncrementalState) Observe(row []float64) {
	for m, v := range row {
		if math.IsNaN(v) {
			v = st.lastRep[m]
		} else {
			st.lastRep[m] = v
		}
		if st.havePrev {
			d := v
			if st.cum[m] {
				d = v - st.prevRep[m]
				if d < 0 {
					d = 0 // counter wrap/reset, as in ts.Diff
				}
			}
			st.roll[m].Push(d)
		}
		st.prevRep[m] = v
	}
	st.havePrev = true
}

// Vector renders the current feature vector from the per-metric
// rollers, concatenated in metric order like features.ExtractSample.
// The result is NOT sanitized.
func (st *IncrementalState) Vector() []float64 {
	vec := make([]float64, len(st.roll)*st.per)
	for m := range st.roll {
		st.roll[m].Features(vec[m*st.per : (m+1)*st.per])
	}
	return vec
}

// Reset empties every roller and the repair state without releasing
// buffers.
func (st *IncrementalState) Reset() {
	for m := range st.roll {
		st.roll[m].Reset()
	}
	for m := range st.lastRep {
		st.lastRep[m] = 0
		st.prevRep[m] = 0
	}
	st.havePrev = false
}
