package stream

import (
	"errors"
	"math"
	"testing"

	"albadross/internal/features/mvts"
	"albadross/internal/telemetry"
)

// countingDiagnoser records calls and returns a fixed label.
type countingDiagnoser struct {
	calls int
	dims  []int
}

func (c *countingDiagnoser) diagnose(v []float64) (string, float64, error) {
	c.calls++
	c.dims = append(c.dims, len(v))
	for _, x := range v {
		if math.IsInf(x, 0) {
			return "", 0, errors.New("inf feature")
		}
	}
	return "healthy", 0.9, nil
}

func newStreamer(t *testing.T, window, stride int) (*Streamer, *countingDiagnoser, []telemetry.Metric) {
	t.Helper()
	schema := telemetry.BuildSchema(27)
	cd := &countingDiagnoser{}
	s, err := New(Config{
		Schema:    schema,
		Extractor: mvts.Extractor{},
		Diagnose:  cd.diagnose,
		Window:    window,
		Stride:    stride,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, cd, schema
}

func TestStreamerEmitsPerStride(t *testing.T) {
	s, cd, schema := newStreamer(t, 20, 10)
	reading := make([]float64, len(schema))
	emitted := 0
	for i := 0; i < 60; i++ {
		for m := range reading {
			reading[m] = float64(i + m)
		}
		d, err := s.Push(reading)
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			emitted++
			if d.Label != "healthy" || d.Confidence != 0.9 {
				t.Fatalf("bad diagnosis: %+v", d)
			}
			if d.WindowEnd != i {
				t.Fatalf("window end = %d, want %d", d.WindowEnd, i)
			}
		}
	}
	// First window completes at sample 20, then every 10: 20,30,40,50,60 -> 5 by 60 samples.
	if emitted != 5 {
		t.Fatalf("emitted = %d, want 5", emitted)
	}
	if cd.calls != emitted {
		t.Fatalf("diagnose calls = %d", cd.calls)
	}
	// Feature vector has 48 features per metric.
	if cd.dims[0] != 48*len(schema) {
		t.Fatalf("feature dim = %d", cd.dims[0])
	}
}

func TestStreamerTumblingDefault(t *testing.T) {
	s, cd, schema := newStreamer(t, 16, 0)
	reading := make([]float64, len(schema))
	for i := 0; i < 48; i++ {
		if _, err := s.Push(reading); err != nil {
			t.Fatal(err)
		}
	}
	if cd.calls != 3 {
		t.Fatalf("tumbling windows: %d diagnoses, want 3", cd.calls)
	}
}

func TestStreamerHandlesMissingReadings(t *testing.T) {
	s, cd, schema := newStreamer(t, 16, 16)
	reading := make([]float64, len(schema))
	for i := 0; i < 16; i++ {
		for m := range reading {
			if (i+m)%5 == 0 {
				reading[m] = NaN()
			} else {
				reading[m] = float64(i)
			}
		}
		if _, err := s.Push(reading); err != nil {
			t.Fatal(err)
		}
	}
	if cd.calls != 1 {
		t.Fatalf("calls = %d", cd.calls)
	}
}

func TestStreamerValidation(t *testing.T) {
	schema := telemetry.BuildSchema(27)
	if _, err := New(Config{Extractor: mvts.Extractor{}, Diagnose: func([]float64) (string, float64, error) { return "", 0, nil }, Window: 16}); err == nil {
		t.Fatal("empty schema should error")
	}
	if _, err := New(Config{Schema: schema, Window: 16}); err == nil {
		t.Fatal("missing extractor/diagnose should error")
	}
	if _, err := New(Config{Schema: schema, Extractor: mvts.Extractor{}, Diagnose: func([]float64) (string, float64, error) { return "", 0, nil }, Window: 2}); err == nil {
		t.Fatal("tiny window should error")
	}
	s, _, _ := newStreamer(t, 16, 8)
	if _, err := s.Push([]float64{1, 2}); err == nil {
		t.Fatal("wrong reading width should error")
	}
}

func TestStreamerReset(t *testing.T) {
	s, cd, schema := newStreamer(t, 16, 16)
	reading := make([]float64, len(schema))
	for i := 0; i < 10; i++ {
		if _, err := s.Push(reading); err != nil {
			t.Fatal(err)
		}
	}
	s.Reset()
	if s.Samples() != 0 {
		t.Fatal("reset should clear the counter")
	}
	for i := 0; i < 15; i++ {
		if _, err := s.Push(reading); err != nil {
			t.Fatal(err)
		}
	}
	if cd.calls != 0 {
		t.Fatalf("no window should have completed, calls = %d", cd.calls)
	}
}

func TestReplayOverGeneratedRun(t *testing.T) {
	sys := telemetry.Volta(27)
	samples, err := sys.GenerateRun(telemetry.RunConfig{
		App: sys.App("CG"), Input: 0, Nodes: 1, Steps: 200, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	cd := &countingDiagnoser{}
	s, err := New(Config{
		Schema:    sys.Metrics,
		Extractor: mvts.Extractor{},
		Diagnose:  cd.diagnose,
		Window:    50,
		Stride:    25,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Replay(s, samples[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	// Windows complete at samples 50, 75, 100, ..., 200 -> 7 diagnoses.
	if len(out) != 7 {
		t.Fatalf("diagnoses = %d, want 7", len(out))
	}
	if out[0].WindowEnd != 49 || out[1].WindowEnd != 74 {
		t.Fatalf("window ends: %d, %d", out[0].WindowEnd, out[1].WindowEnd)
	}
}

func TestReplayRejectsRaggedData(t *testing.T) {
	s, _, _ := newStreamer(t, 16, 16)
	sys := telemetry.Volta(27)
	samples, err := sys.GenerateRun(telemetry.RunConfig{
		App: sys.App("CG"), Input: 0, Nodes: 1, Steps: 100, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	samples[0].Data.Metrics[3] = samples[0].Data.Metrics[3][:10]
	if _, err := Replay(s, samples[0].Data); err == nil {
		t.Fatal("ragged data should be rejected")
	}
}
