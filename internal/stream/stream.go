// Package stream provides online, sliding-window anomaly diagnosis — the
// deployment mode of the paper's future work (Sec. VI): instead of
// diagnosing a completed application run, a deployed instance consumes
// the node's telemetry as it arrives and emits a diagnosis every stride
// while the application is still running.
//
// A Streamer buffers per-timestep metric readings; once a full window is
// available it applies the same preparation the offline pipeline uses on
// whole runs (interpolation of missing readings and differencing of
// cumulative counters — there are no init/teardown transients to trim
// inside a steady-state window), extracts features, and hands the vector
// to the diagnosing function (usually core.Deployment.Diagnose composed
// with the preprocessor).
package stream

import (
	"errors"
	"fmt"
	"math"

	"albadross/internal/features"
	"albadross/internal/telemetry"
	"albadross/internal/ts"
)

// Diagnosis is the minimal result surface the streamer forwards.
type Diagnosis struct {
	// Label is the diagnosed class.
	Label string
	// Confidence is the winning class probability.
	Confidence float64
	// WindowEnd is the timestep index (since stream start) of the last
	// sample in the diagnosed window.
	WindowEnd int
}

// DiagnoseFunc turns a raw (extracted, untransformed) feature vector
// into a (label, confidence) pair; core.Framework.DiagnoseVector and
// core.Deployment.Diagnose both adapt trivially.
type DiagnoseFunc func(features []float64) (label string, confidence float64, err error)

// Config assembles a Streamer.
type Config struct {
	// Schema describes the incoming metric vector (order matters).
	Schema []telemetry.Metric
	// Extractor computes per-metric features on each window.
	Extractor features.Extractor
	// Diagnose classifies each window's feature vector.
	Diagnose DiagnoseFunc
	// Window is the diagnosis window length in samples (e.g. 300 at
	// 1 Hz = 5 minutes).
	Window int
	// Stride is the hop between diagnoses; 0 defaults to Window (tumbling
	// windows).
	Stride int
}

// Streamer consumes one node's telemetry readings.
type Streamer struct {
	cfg   Config
	buf   [][]float64 // ring of the last Window readings, in arrival order
	count int         // total samples pushed
	since int         // samples since the last diagnosis
}

// New validates the configuration and returns a Streamer.
func New(cfg Config) (*Streamer, error) {
	if len(cfg.Schema) == 0 {
		return nil, errors.New("stream: empty schema")
	}
	if cfg.Extractor == nil || cfg.Diagnose == nil {
		return nil, errors.New("stream: Extractor and Diagnose are required")
	}
	if cfg.Window < 8 {
		return nil, fmt.Errorf("stream: window %d too short (need >= 8)", cfg.Window)
	}
	if cfg.Stride <= 0 {
		cfg.Stride = cfg.Window
	}
	return &Streamer{cfg: cfg}, nil
}

// Push appends one timestep's readings (NaN marks missing metrics).
// When a window boundary is crossed it returns a diagnosis; otherwise it
// returns nil.
func (s *Streamer) Push(values []float64) (*Diagnosis, error) {
	if len(values) != len(s.cfg.Schema) {
		return nil, fmt.Errorf("stream: reading has %d metrics, schema %d", len(values), len(s.cfg.Schema))
	}
	row := append([]float64{}, values...)
	s.buf = append(s.buf, row)
	if len(s.buf) > s.cfg.Window {
		s.buf = s.buf[1:]
	}
	s.count++
	s.since++
	if len(s.buf) < s.cfg.Window || s.since < s.cfg.Stride {
		return nil, nil
	}
	s.since = 0
	return s.diagnoseWindow()
}

// diagnoseWindow prepares and classifies the current buffer.
func (s *Streamer) diagnoseWindow() (*Diagnosis, error) {
	nM := len(s.cfg.Schema)
	block := ts.NewMultivariate(nM, len(s.buf))
	for t, row := range s.buf {
		for m := 0; m < nM; m++ {
			block.Metrics[m][t] = row[m]
		}
	}
	ts.InterpolateAll(block)
	if err := ts.DiffCounters(block, telemetry.CumulativeFlags(s.cfg.Schema)); err != nil {
		return nil, err
	}
	vec := features.ExtractSample(s.cfg.Extractor, block)
	label, conf, err := s.cfg.Diagnose(vec)
	if err != nil {
		return nil, err
	}
	return &Diagnosis{Label: label, Confidence: conf, WindowEnd: s.count - 1}, nil
}

// Samples reports how many readings have been pushed.
func (s *Streamer) Samples() int { return s.count }

// Reset clears the buffer (e.g. between application runs on the node).
func (s *Streamer) Reset() {
	s.buf = s.buf[:0]
	s.count = 0
	s.since = 0
}

// Replay feeds a completed node sample through the streamer sample by
// sample and collects every emitted diagnosis — useful for validating a
// deployment against recorded telemetry.
func Replay(s *Streamer, data *ts.Multivariate) ([]*Diagnosis, error) {
	if err := data.Validate(); err != nil {
		return nil, err
	}
	steps := data.Steps()
	reading := make([]float64, len(data.Metrics))
	var out []*Diagnosis
	for t := 0; t < steps; t++ {
		for m := range data.Metrics {
			reading[m] = data.Metrics[m][t]
		}
		d, err := s.Push(reading)
		if err != nil {
			return nil, err
		}
		if d != nil {
			out = append(out, d)
		}
	}
	return out, nil
}

// NaN is a convenience for building readings with missing metrics.
func NaN() float64 { return math.NaN() }
