// Package stream provides online, sliding-window anomaly diagnosis — the
// deployment mode of the paper's future work (Sec. VI): instead of
// diagnosing a completed application run, a deployed instance consumes
// the node's telemetry as it arrives and emits a diagnosis every stride
// while the application is still running.
//
// A Streamer buffers per-timestep metric readings; once a full window is
// available it applies the same preparation the offline pipeline uses on
// whole runs (repair of missing readings and differencing of cumulative
// counters — there are no init/teardown transients to trim inside a
// steady-state window), extracts features, and hands the vector to the
// diagnosing function (usually core.Deployment.Diagnose composed with
// the preprocessor).
//
// Production telemetry does not arrive clean: samples are lost, delivered
// twice, or delivered out of order. Two hardening layers make the
// streamer safe on such input. PushAt accepts timestamped readings
// through a bounded reordering buffer that re-sequences late arrivals,
// drops duplicates, and synthesizes explicit gap rows for samples that
// never arrive. A GapPolicy then decides how a window with missing data
// is repaired — interpolated, held at the last reading, or refused with
// an explicit abstain diagnosis — so every completed window is accounted
// for: diagnosed or abstained, never dropped and never NaN.
package stream

import (
	"errors"
	"fmt"
	"math"

	"albadross/internal/features"
	"albadross/internal/obs"
	"albadross/internal/telemetry"
	"albadross/internal/ts"
)

// AbstainLabel is the label of a window the streamer declined to
// diagnose because too much telemetry was missing (GapAbstain policy) or
// the classifier returned a non-finite confidence.
const AbstainLabel = "abstain"

// GapPolicy selects how missing samples inside a window are repaired
// before feature extraction.
type GapPolicy int

const (
	// GapInterpolate linearly interpolates gaps (offline-pipeline
	// parity; the default).
	GapInterpolate GapPolicy = iota
	// GapHoldLast propagates the last finite reading forward — the
	// causal repair a live deployment can actually compute.
	GapHoldLast
	// GapAbstain interpolates when the window's missing fraction is at
	// most MaxMissing and otherwise emits an explicit abstain diagnosis
	// instead of guessing on mostly-absent data.
	GapAbstain
)

// String names the policy.
func (g GapPolicy) String() string {
	switch g {
	case GapInterpolate:
		return "interpolate"
	case GapHoldLast:
		return "hold-last"
	case GapAbstain:
		return "abstain"
	default:
		return fmt.Sprintf("gap-policy(%d)", int(g))
	}
}

// Diagnosis is the minimal result surface the streamer forwards.
type Diagnosis struct {
	// Label is the diagnosed class, or AbstainLabel.
	Label string
	// Confidence is the winning class probability (0 when abstained).
	Confidence float64
	// WindowEnd is the timestep index (since stream start) of the last
	// sample in the diagnosed window.
	WindowEnd int
	// Abstained marks a window the streamer refused to classify.
	Abstained bool
	// MissingFrac is the fraction of window cells that were missing
	// before repair.
	MissingFrac float64
}

// DiagnoseFunc turns a raw (extracted, untransformed) feature vector
// into a (label, confidence) pair; core.Framework.DiagnoseVector and
// core.Deployment.Diagnose both adapt trivially.
type DiagnoseFunc func(features []float64) (label string, confidence float64, err error)

// Config assembles a Streamer.
type Config struct {
	// Schema describes the incoming metric vector (order matters).
	Schema []telemetry.Metric
	// Extractor computes per-metric features on each window.
	Extractor features.Extractor
	// Diagnose classifies each window's feature vector.
	Diagnose DiagnoseFunc
	// Window is the diagnosis window length in samples (e.g. 300 at
	// 1 Hz = 5 minutes).
	Window int
	// Stride is the hop between diagnoses; 0 defaults to Window (tumbling
	// windows).
	Stride int
	// Reorder is the reordering-buffer horizon for PushAt: a reading may
	// arrive up to Reorder positions after a newer timestamp and still
	// be sequenced correctly; once the buffer spans more than Reorder
	// timestamps the oldest missing slot is declared lost and filled
	// with an explicit all-NaN gap row. 0 disables buffering (readings
	// commit immediately in arrival order).
	Reorder int
	// MaxJump bounds how far past the commit frontier a claimed
	// timestamp may plausibly sit. A reading jumping further ahead is
	// dropped with accounting (Stats.Implausible) instead of trusted —
	// a single corrupt timestamp must not trigger one synthesized gap
	// row per skipped timestep all the way to it. 0 defaults to
	// 4*Window+Reorder; an explicit value must be >= Reorder. The cap
	// trades outage length for corruption immunity: a feed resuming
	// after a real gap longer than MaxJump keeps being dropped (visible
	// as a growing Implausible count) until the caller Resets the
	// streamer or configures a larger cap.
	MaxJump int
	// Gap selects the missing-data repair policy (default
	// GapInterpolate).
	Gap GapPolicy
	// MaxMissing is the largest fraction of missing cells GapAbstain
	// tolerates before abstaining; 0 defaults to 0.5.
	MaxMissing float64
	// Rolling switches feature extraction to the incremental
	// sliding-window path: instead of re-extracting every feature from
	// the whole window at each stride, per-metric rolling state is
	// updated once per committed sample. Requires an Extractor that
	// implements features.Incremental and a causal gap policy
	// (GapHoldLast or GapAbstain) — GapInterpolate reads future samples
	// inside the window, which an incremental path cannot do.
	//
	// Repair semantics under Rolling are stream-global hold-last: a
	// missing reading repeats the metric's last delivered value even
	// when that value precedes the current window (0 before the first
	// delivery). The batch path repairs each window in isolation, so
	// the two paths agree exactly on windows without missing cells and
	// differ only in how cells near the edge of a gappy window are
	// filled. Counter differencing is per-step (d = max(0, x[t] -
	// x[t-1])), identical to the batch path's ts.DiffCounters.
	Rolling bool
}

// Stats counts what the streamer absorbed from an imperfect feed.
type Stats struct {
	// Pushed counts readings accepted into the sequence (gap fills not
	// included).
	Pushed int
	// Duplicates counts readings dropped because their timestamp was
	// already delivered.
	Duplicates int
	// Late counts readings dropped because they arrived after their
	// slot had been committed (beyond the reorder horizon).
	Late int
	// Implausible counts readings dropped because their claimed
	// timestamp jumped more than MaxJump past the commit frontier
	// (corrupt clock or bit-flipped timestamp).
	Implausible int
	// GapsFilled counts all-NaN rows synthesized for timestamps that
	// never arrived.
	GapsFilled int
	// Windows counts completed windows (diagnosed + abstained).
	Windows int
	// Abstained counts windows refused under GapAbstain or on a
	// non-finite classifier confidence.
	Abstained int
}

// Streamer consumes one node's telemetry readings.
type Streamer struct {
	cfg   Config
	buf   [][]float64 // ring of the last Window readings, in arrival order
	count int         // total samples committed
	since int         // samples since the last diagnosis

	// Timestamped-path state (PushAt).
	anchored bool
	nextT    int // next claimed timestep to commit
	pending  map[int][]float64
	maxT     int // highest claimed timestep buffered or committed

	// Rolling-extraction state (cfg.Rolling). Each metric owns one
	// rolling window of the causally-prepared series; window length is
	// Window-1 because counter differencing consumes one sample.
	roll []features.Rolling
	// cum caches telemetry.CumulativeFlags(Schema).
	cum []bool
	// lastRep is the last delivered (non-NaN) value per metric, the
	// causal hold-last repair source; starts at 0, matching
	// ts.HoldLast's all-missing fallback.
	lastRep []float64
	// prevRep is the previous repaired reading per metric, the
	// differencing base; valid once havePrev is set.
	prevRep  []float64
	havePrev bool

	stats Stats
}

// New validates the configuration and returns a Streamer.
func New(cfg Config) (*Streamer, error) {
	if len(cfg.Schema) == 0 {
		return nil, errors.New("stream: empty schema")
	}
	if cfg.Extractor == nil || cfg.Diagnose == nil {
		return nil, errors.New("stream: Extractor and Diagnose are required")
	}
	if cfg.Window < 8 {
		return nil, fmt.Errorf("stream: window %d too short (need >= 8)", cfg.Window)
	}
	if cfg.Stride <= 0 {
		cfg.Stride = cfg.Window
	}
	if cfg.Reorder < 0 {
		return nil, fmt.Errorf("stream: negative reorder horizon %d", cfg.Reorder)
	}
	if cfg.MaxJump == 0 {
		cfg.MaxJump = 4*cfg.Window + cfg.Reorder
	}
	if cfg.MaxJump < cfg.Reorder {
		return nil, fmt.Errorf("stream: MaxJump %d below reorder horizon %d", cfg.MaxJump, cfg.Reorder)
	}
	if cfg.MaxMissing < 0 || cfg.MaxMissing > 1 {
		return nil, fmt.Errorf("stream: MaxMissing %v outside [0,1]", cfg.MaxMissing)
	}
	if cfg.MaxMissing == 0 {
		cfg.MaxMissing = 0.5
	}
	s := &Streamer{cfg: cfg, pending: map[int][]float64{}}
	if cfg.Rolling {
		inc, ok := cfg.Extractor.(features.Incremental)
		if !ok {
			return nil, fmt.Errorf("stream: extractor %q does not implement features.Incremental; Rolling needs an incremental extractor", cfg.Extractor.Name())
		}
		if cfg.Gap == GapInterpolate {
			return nil, errors.New("stream: Rolling requires a causal gap policy (GapHoldLast or GapAbstain); GapInterpolate reads future samples")
		}
		nM := len(cfg.Schema)
		s.roll = make([]features.Rolling, nM)
		for m := range s.roll {
			s.roll[m] = inc.NewRolling(cfg.Window - 1)
		}
		s.cum = telemetry.CumulativeFlags(cfg.Schema)
		s.lastRep = make([]float64, nM)
		s.prevRep = make([]float64, nM)
	}
	return s, nil
}

// Push appends one timestep's readings in arrival order (NaN marks
// missing metrics). When a window boundary is crossed it returns a
// diagnosis; otherwise it returns nil. Push bypasses the reordering
// buffer — use PushAt for feeds with claimed timestamps.
func (s *Streamer) Push(values []float64) (*Diagnosis, error) {
	if len(values) != len(s.cfg.Schema) {
		return nil, fmt.Errorf("stream: reading has %d metrics, schema %d", len(values), len(s.cfg.Schema))
	}
	s.stats.Pushed++
	pushedTotal.Inc()
	return s.commit(append([]float64{}, values...))
}

// PushAt delivers one timestamped reading through the bounded reordering
// buffer. Readings may arrive out of order within the Reorder horizon;
// duplicates (same timestamp), readings older than the already-committed
// frontier, and readings claiming a timestamp more than MaxJump ahead of
// it (implausible clocks) are dropped with accounting. A single call can
// release several buffered readings, so it returns every diagnosis
// produced. The first accepted reading anchors the timestamp origin, so
// a constant clock skew shifts nothing.
func (s *Streamer) PushAt(t int, values []float64) ([]*Diagnosis, error) {
	if len(values) != len(s.cfg.Schema) {
		return nil, fmt.Errorf("stream: reading has %d metrics, schema %d", len(values), len(s.cfg.Schema))
	}
	if !s.anchored {
		s.anchored = true
		s.nextT = t
		s.maxT = t - 1
	}
	if t < s.nextT {
		s.stats.Late++
		lateTotal.Inc()
		return nil, nil
	}
	if t > s.nextT+s.cfg.MaxJump {
		s.stats.Implausible++
		implausibleTotal.Inc()
		return nil, nil
	}
	if _, dup := s.pending[t]; dup {
		s.stats.Duplicates++
		duplicatesTotal.Inc()
		return nil, nil
	}
	//albacheck:ignore hotalloc ownership copy of the caller's row; the reorder buffer must outlive the call
	s.pending[t] = append([]float64{}, values...)
	if t > s.maxT {
		s.maxT = t
	}
	s.stats.Pushed++
	pushedTotal.Inc()
	out, err := s.drain(false)
	reorderDepth.Set(float64(len(s.pending)))
	return out, err
}

// drain commits every pending reading that is either next in sequence
// or whose gap has outlived the reorder horizon (final drains every
// remaining slot).
func (s *Streamer) drain(final bool) ([]*Diagnosis, error) {
	var out []*Diagnosis
	for len(s.pending) > 0 {
		row, ok := s.pending[s.nextT]
		if !ok {
			// The slot is missing; give it up only once no in-horizon
			// arrival could still fill it.
			if !final && s.maxT-s.nextT < s.cfg.Reorder {
				break
			}
			//albacheck:ignore hotalloc gap rows are retained in the window ring, so each needs its own backing; bounded by the reorder horizon
			row = make([]float64, len(s.cfg.Schema))
			for i := range row {
				row[i] = math.NaN()
			}
			s.stats.GapsFilled++
			gapsFilledTotal.Inc()
		} else {
			delete(s.pending, s.nextT)
		}
		s.nextT++
		d, err := s.commit(row)
		if err != nil {
			return out, err
		}
		if d != nil {
			out = append(out, d) //albacheck:ignore hotalloc diagnosis fan-out is 0 or 1 per push at steady state; the slice only grows on reorder flushes
		}
	}
	return out, nil
}

// Flush drains the reordering buffer at end-of-stream, filling any
// remaining gaps, and returns the diagnoses released by the tail.
func (s *Streamer) Flush() ([]*Diagnosis, error) {
	return s.drain(true)
}

// commit appends one in-sequence reading to the window ring and
// diagnoses when a boundary is crossed.
func (s *Streamer) commit(row []float64) (*Diagnosis, error) {
	s.buf = append(s.buf, row)
	if len(s.buf) > s.cfg.Window {
		s.buf = s.buf[1:]
	}
	if s.roll != nil {
		s.pushRolling(row)
	}
	s.count++
	s.since++
	if len(s.buf) < s.cfg.Window || s.since < s.cfg.Stride {
		return nil, nil
	}
	s.since = 0
	return s.diagnoseWindow()
}

// pushRolling advances the incremental extraction state by one
// committed reading: causal hold-last repair, per-step counter
// differencing, then one Push per metric roller. The first reading only
// seeds the differencing base (the batch path's DiffCounters likewise
// consumes one sample), so each roller holds Window-1 prepared values
// exactly when the raw ring holds Window readings.
func (s *Streamer) pushRolling(row []float64) {
	for m, v := range row {
		if math.IsNaN(v) {
			v = s.lastRep[m]
		} else {
			s.lastRep[m] = v
		}
		if s.havePrev {
			d := v
			if s.cum[m] {
				d = v - s.prevRep[m]
				if d < 0 {
					d = 0 // counter wrap/reset, as in ts.Diff
				}
			}
			s.roll[m].Push(d)
		}
		s.prevRep[m] = v
	}
	s.havePrev = true
}

// rollingVector renders the current feature vector from the per-metric
// rollers, concatenated in metric order like features.ExtractSample.
func (s *Streamer) rollingVector() []float64 {
	per := len(s.cfg.Extractor.FeatureNames())
	vec := make([]float64, len(s.roll)*per)
	for m := range s.roll {
		s.roll[m].Features(vec[m*per : (m+1)*per])
	}
	return vec
}

// diagnoseWindow repairs, prepares and classifies the current buffer.
// Every completed window yields a diagnosis or an explicit abstention;
// feature vectors are sanitized so degraded windows (all-NaN or constant
// series) stay finite.
//
//albacheck:coldpath per-window work, stride-amortized over pushes; the BENCH_5 gate holds the end-to-end rows/s floor
func (s *Streamer) diagnoseWindow() (*Diagnosis, error) {
	defer obs.StartSpan(windowLatency).End()
	s.stats.Windows++
	windowsTotal.Inc()
	nM := len(s.cfg.Schema)
	nanCells := 0
	for _, row := range s.buf {
		for _, v := range row {
			if math.IsNaN(v) {
				nanCells++
			}
		}
	}
	missing := float64(nanCells) / float64(nM*len(s.buf))
	if s.cfg.Gap == GapAbstain && missing > s.cfg.MaxMissing {
		s.stats.Abstained++
		abstainedTotal.Inc()
		return &Diagnosis{
			Label: AbstainLabel, Abstained: true,
			MissingFrac: missing, WindowEnd: s.count - 1,
		}, nil
	}
	var vec []float64
	if s.roll != nil {
		vec = s.rollingVector()
	} else {
		block := ts.NewMultivariate(nM, len(s.buf))
		for t, row := range s.buf {
			for m := 0; m < nM; m++ {
				block.Metrics[m][t] = row[m]
			}
		}
		if s.cfg.Gap == GapHoldLast {
			ts.HoldLastAll(block)
		} else {
			ts.InterpolateAll(block)
		}
		if err := ts.DiffCounters(block, telemetry.CumulativeFlags(s.cfg.Schema)); err != nil {
			return nil, err
		}
		vec = features.ExtractSample(s.cfg.Extractor, block)
	}
	features.Sanitize(vec)
	label, conf, err := s.cfg.Diagnose(vec)
	if err != nil {
		return nil, err
	}
	if math.IsNaN(conf) || math.IsInf(conf, 0) {
		s.stats.Abstained++
		abstainedTotal.Inc()
		return &Diagnosis{
			Label: AbstainLabel, Abstained: true,
			MissingFrac: missing, WindowEnd: s.count - 1,
		}, nil
	}
	return &Diagnosis{
		Label: label, Confidence: conf,
		WindowEnd: s.count - 1, MissingFrac: missing,
	}, nil
}

// Samples reports how many readings have been committed to the window
// sequence.
func (s *Streamer) Samples() int { return s.count }

// Stats returns the delivery/diagnosis accounting so far.
func (s *Streamer) Stats() Stats { return s.stats }

// Reset clears all buffers and accounting (e.g. between application
// runs on the node).
func (s *Streamer) Reset() {
	s.buf = s.buf[:0]
	s.count = 0
	s.since = 0
	s.anchored = false
	s.nextT = 0
	s.maxT = 0
	s.pending = map[int][]float64{}
	for m := range s.roll {
		s.roll[m].Reset()
	}
	for m := range s.lastRep {
		s.lastRep[m] = 0
		s.prevRep[m] = 0
	}
	s.havePrev = false
	s.stats = Stats{}
}

// Replay feeds a completed node sample through the streamer sample by
// sample and collects every emitted diagnosis — useful for validating a
// deployment against recorded telemetry.
func Replay(s *Streamer, data *ts.Multivariate) ([]*Diagnosis, error) {
	if err := data.Validate(); err != nil {
		return nil, err
	}
	steps := data.Steps()
	reading := make([]float64, len(data.Metrics))
	var out []*Diagnosis
	for t := 0; t < steps; t++ {
		for m := range data.Metrics {
			reading[m] = data.Metrics[m][t]
		}
		d, err := s.Push(reading)
		if err != nil {
			return nil, err
		}
		if d != nil {
			out = append(out, d)
		}
	}
	return out, nil
}

// NaN is a convenience for building readings with missing metrics.
func NaN() float64 { return math.NaN() }
