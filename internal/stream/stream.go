// Package stream provides online, sliding-window anomaly diagnosis — the
// deployment mode of the paper's future work (Sec. VI): instead of
// diagnosing a completed application run, a deployed instance consumes
// the node's telemetry as it arrives and emits a diagnosis every stride
// while the application is still running.
//
// A Streamer buffers per-timestep metric readings; once a full window is
// available it applies the same preparation the offline pipeline uses on
// whole runs (repair of missing readings and differencing of cumulative
// counters — there are no init/teardown transients to trim inside a
// steady-state window), extracts features, and hands the vector to the
// diagnosing function (usually core.Deployment.Diagnose composed with
// the preprocessor).
//
// Production telemetry does not arrive clean: samples are lost, delivered
// twice, or delivered out of order. Two hardening layers make the
// streamer safe on such input. PushAt accepts timestamped readings
// through a bounded reordering buffer that re-sequences late arrivals,
// drops duplicates, and synthesizes explicit gap rows for samples that
// never arrive. A GapPolicy then decides how a window with missing data
// is repaired — interpolated, held at the last reading, or refused with
// an explicit abstain diagnosis — so every completed window is accounted
// for: diagnosed or abstained, never dropped and never NaN.
package stream

import (
	"errors"
	"fmt"
	"math"

	"albadross/internal/features"
	"albadross/internal/obs"
	"albadross/internal/telemetry"
	"albadross/internal/ts"
)

// The Streamer is a facade over two exported seams shared with the
// composable stage graph (internal/pipeline): a Windower (delivery,
// reordering, gap synthesis, ring, stride boundaries — see window.go)
// and the extraction layer (BatchVector / IncrementalState — see
// extract.go). Keeping exactly one implementation of each is what makes
// write-ahead-log replay through the stage graph bitwise-identical to a
// live Streamer run.

// AbstainLabel is the label of a window the streamer declined to
// diagnose because too much telemetry was missing (GapAbstain policy) or
// the classifier returned a non-finite confidence.
const AbstainLabel = "abstain"

// GapPolicy selects how missing samples inside a window are repaired
// before feature extraction.
type GapPolicy int

const (
	// GapInterpolate linearly interpolates gaps (offline-pipeline
	// parity; the default).
	GapInterpolate GapPolicy = iota
	// GapHoldLast propagates the last finite reading forward — the
	// causal repair a live deployment can actually compute.
	GapHoldLast
	// GapAbstain interpolates when the window's missing fraction is at
	// most MaxMissing and otherwise emits an explicit abstain diagnosis
	// instead of guessing on mostly-absent data.
	GapAbstain
)

// String names the policy.
func (g GapPolicy) String() string {
	switch g {
	case GapInterpolate:
		return "interpolate"
	case GapHoldLast:
		return "hold-last"
	case GapAbstain:
		return "abstain"
	default:
		return fmt.Sprintf("gap-policy(%d)", int(g))
	}
}

// Diagnosis is the minimal result surface the streamer forwards.
type Diagnosis struct {
	// Label is the diagnosed class, or AbstainLabel.
	Label string
	// Confidence is the winning class probability (0 when abstained).
	Confidence float64
	// WindowEnd is the timestep index (since stream start) of the last
	// sample in the diagnosed window.
	WindowEnd int
	// Abstained marks a window the streamer refused to classify.
	Abstained bool
	// MissingFrac is the fraction of window cells that were missing
	// before repair.
	MissingFrac float64
}

// DiagnoseFunc turns a raw (extracted, untransformed) feature vector
// into a (label, confidence) pair; core.Framework.DiagnoseVector and
// core.Deployment.Diagnose both adapt trivially.
type DiagnoseFunc func(features []float64) (label string, confidence float64, err error)

// Config assembles a Streamer.
type Config struct {
	// Schema describes the incoming metric vector (order matters).
	Schema []telemetry.Metric
	// Extractor computes per-metric features on each window.
	Extractor features.Extractor
	// Diagnose classifies each window's feature vector.
	Diagnose DiagnoseFunc
	// Window is the diagnosis window length in samples (e.g. 300 at
	// 1 Hz = 5 minutes).
	Window int
	// Stride is the hop between diagnoses; 0 defaults to Window (tumbling
	// windows).
	Stride int
	// Reorder is the reordering-buffer horizon for PushAt: a reading may
	// arrive up to Reorder positions after a newer timestamp and still
	// be sequenced correctly; once the buffer spans more than Reorder
	// timestamps the oldest missing slot is declared lost and filled
	// with an explicit all-NaN gap row. 0 disables buffering (readings
	// commit immediately in arrival order).
	Reorder int
	// MaxJump bounds how far past the commit frontier a claimed
	// timestamp may plausibly sit. A reading jumping further ahead is
	// dropped with accounting (Stats.Implausible) instead of trusted —
	// a single corrupt timestamp must not trigger one synthesized gap
	// row per skipped timestep all the way to it. 0 defaults to
	// 4*Window+Reorder; an explicit value must be >= Reorder. The cap
	// trades outage length for corruption immunity: a feed resuming
	// after a real gap longer than MaxJump keeps being dropped (visible
	// as a growing Implausible count) until the caller Resets the
	// streamer or configures a larger cap.
	MaxJump int
	// Gap selects the missing-data repair policy (default
	// GapInterpolate).
	Gap GapPolicy
	// MaxMissing is the largest fraction of missing cells GapAbstain
	// tolerates before abstaining; 0 defaults to 0.5.
	MaxMissing float64
	// Rolling switches feature extraction to the incremental
	// sliding-window path: instead of re-extracting every feature from
	// the whole window at each stride, per-metric rolling state is
	// updated once per committed sample. Requires an Extractor that
	// implements features.Incremental and a causal gap policy
	// (GapHoldLast or GapAbstain) — GapInterpolate reads future samples
	// inside the window, which an incremental path cannot do.
	//
	// Repair semantics under Rolling are stream-global hold-last: a
	// missing reading repeats the metric's last delivered value even
	// when that value precedes the current window (0 before the first
	// delivery). The batch path repairs each window in isolation, so
	// the two paths agree exactly on windows without missing cells and
	// differ only in how cells near the edge of a gappy window are
	// filled. Counter differencing is per-step (d = max(0, x[t] -
	// x[t-1])), identical to the batch path's ts.DiffCounters.
	Rolling bool
}

// Stats counts what the streamer absorbed from an imperfect feed.
type Stats struct {
	// Pushed counts readings accepted into the sequence (gap fills not
	// included).
	Pushed int
	// Duplicates counts readings dropped because their timestamp was
	// already delivered.
	Duplicates int
	// Late counts readings dropped because they arrived after their
	// slot had been committed (beyond the reorder horizon).
	Late int
	// Implausible counts readings dropped because their claimed
	// timestamp jumped more than MaxJump past the commit frontier
	// (corrupt clock or bit-flipped timestamp).
	Implausible int
	// GapsFilled counts all-NaN rows synthesized for timestamps that
	// never arrived.
	GapsFilled int
	// Windows counts completed windows (diagnosed + abstained).
	Windows int
	// Abstained counts windows refused under GapAbstain or on a
	// non-finite classifier confidence.
	Abstained int
}

// Streamer consumes one node's telemetry readings.
type Streamer struct {
	cfg Config
	// win owns delivery, the reordering buffer, the window ring and
	// stride boundaries.
	win *Windower
	// inc is the rolling-extraction state (cfg.Rolling), nil on the
	// batch path.
	inc *IncrementalState

	// emitted collects the diagnoses produced by the current
	// Push/PushAt/Flush call via the window callback; ownership passes
	// to the caller on return.
	emitted []*Diagnosis

	abstained int // windows refused (merged into Stats)
}

// New validates the configuration and returns a Streamer.
func New(cfg Config) (*Streamer, error) {
	if len(cfg.Schema) == 0 {
		return nil, errors.New("stream: empty schema")
	}
	if cfg.Extractor == nil || cfg.Diagnose == nil {
		return nil, errors.New("stream: Extractor and Diagnose are required")
	}
	if cfg.MaxMissing < 0 || cfg.MaxMissing > 1 {
		return nil, fmt.Errorf("stream: MaxMissing %v outside [0,1]", cfg.MaxMissing)
	}
	if cfg.MaxMissing == 0 {
		cfg.MaxMissing = 0.5
	}
	s := &Streamer{cfg: cfg}
	if cfg.Rolling {
		inc, ok := cfg.Extractor.(features.Incremental)
		if !ok {
			return nil, fmt.Errorf("stream: extractor %q does not implement features.Incremental; Rolling needs an incremental extractor", cfg.Extractor.Name())
		}
		if cfg.Gap == GapInterpolate {
			return nil, errors.New("stream: Rolling requires a causal gap policy (GapHoldLast or GapAbstain); GapInterpolate reads future samples")
		}
		s.inc = NewIncrementalState(inc, cfg.Schema, cfg.Window)
	}
	var onCommit func(row []float64)
	if s.inc != nil {
		onCommit = s.inc.Observe
	}
	win, err := NewWindower(WindowerConfig{
		Metrics: len(cfg.Schema),
		Window:  cfg.Window,
		Stride:  cfg.Stride,
		Reorder: cfg.Reorder,
		MaxJump: cfg.MaxJump,
	}, onCommit, func(rows [][]float64, end int) error {
		d, err := s.diagnoseWindow(rows, end)
		if err != nil {
			return err
		}
		s.emitted = append(s.emitted, d) //albacheck:ignore hotalloc diagnosis fan-out is 0 or 1 per push at steady state; the slice only grows on reorder flushes
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.win = win
	// Reflect the resolved defaults back into the visible config.
	s.cfg.Stride = win.Config().Stride
	s.cfg.MaxJump = win.Config().MaxJump
	return s, nil
}

// Push appends one timestep's readings in arrival order (NaN marks
// missing metrics). When a window boundary is crossed it returns a
// diagnosis; otherwise it returns nil. Push bypasses the reordering
// buffer — use PushAt for feeds with claimed timestamps.
func (s *Streamer) Push(values []float64) (*Diagnosis, error) {
	s.emitted = nil
	if err := s.win.Push(values); err != nil {
		return nil, err
	}
	if len(s.emitted) == 0 {
		return nil, nil
	}
	return s.emitted[0], nil
}

// PushAt delivers one timestamped reading through the bounded reordering
// buffer. Readings may arrive out of order within the Reorder horizon;
// duplicates (same timestamp), readings older than the already-committed
// frontier, and readings claiming a timestamp more than MaxJump ahead of
// it (implausible clocks) are dropped with accounting. A single call can
// release several buffered readings, so it returns every diagnosis
// produced. The first accepted reading anchors the timestamp origin, so
// a constant clock skew shifts nothing.
func (s *Streamer) PushAt(t int, values []float64) ([]*Diagnosis, error) {
	s.emitted = nil
	err := s.win.PushAt(t, values)
	return s.emitted, err
}

// Flush drains the reordering buffer at end-of-stream, filling any
// remaining gaps, and returns the diagnoses released by the tail.
func (s *Streamer) Flush() ([]*Diagnosis, error) {
	s.emitted = nil
	err := s.win.Flush()
	return s.emitted, err
}

// diagnoseWindow repairs, prepares and classifies one completed window.
// Every completed window yields a diagnosis or an explicit abstention;
// feature vectors are sanitized so degraded windows (all-NaN or constant
// series) stay finite.
//
//albacheck:coldpath per-window work, stride-amortized over pushes; the BENCH_5 gate holds the end-to-end rows/s floor
func (s *Streamer) diagnoseWindow(rows [][]float64, end int) (*Diagnosis, error) {
	defer obs.StartSpan(windowLatency).End()
	missing := MissingFraction(rows)
	if s.cfg.Gap == GapAbstain && missing > s.cfg.MaxMissing {
		s.abstained++
		abstainedTotal.Inc()
		return &Diagnosis{
			Label: AbstainLabel, Abstained: true,
			MissingFrac: missing, WindowEnd: end,
		}, nil
	}
	var vec []float64
	if s.inc != nil {
		vec = s.inc.Vector()
	} else {
		var err error
		vec, err = BatchVector(rows, s.cfg.Schema, s.cfg.Gap, s.cfg.Extractor)
		if err != nil {
			return nil, err
		}
	}
	features.Sanitize(vec)
	label, conf, err := s.cfg.Diagnose(vec)
	if err != nil {
		return nil, err
	}
	if math.IsNaN(conf) || math.IsInf(conf, 0) {
		s.abstained++
		abstainedTotal.Inc()
		return &Diagnosis{
			Label: AbstainLabel, Abstained: true,
			MissingFrac: missing, WindowEnd: end,
		}, nil
	}
	return &Diagnosis{
		Label: label, Confidence: conf,
		WindowEnd: end, MissingFrac: missing,
	}, nil
}

// Samples reports how many readings have been committed to the window
// sequence.
func (s *Streamer) Samples() int { return s.win.Committed() }

// Stats returns the delivery/diagnosis accounting so far.
func (s *Streamer) Stats() Stats {
	st := s.win.Stats()
	st.Abstained = s.abstained
	return st
}

// Reset clears all buffers and accounting (e.g. between application
// runs on the node).
func (s *Streamer) Reset() {
	s.win.Reset()
	if s.inc != nil {
		s.inc.Reset()
	}
	s.emitted = nil
	s.abstained = 0
}

// Replay feeds a completed node sample through the streamer sample by
// sample and collects every emitted diagnosis — useful for validating a
// deployment against recorded telemetry.
func Replay(s *Streamer, data *ts.Multivariate) ([]*Diagnosis, error) {
	if err := data.Validate(); err != nil {
		return nil, err
	}
	steps := data.Steps()
	reading := make([]float64, len(data.Metrics))
	var out []*Diagnosis
	for t := 0; t < steps; t++ {
		for m := range data.Metrics {
			reading[m] = data.Metrics[m][t]
		}
		d, err := s.Push(reading)
		if err != nil {
			return nil, err
		}
		if d != nil {
			out = append(out, d)
		}
	}
	return out, nil
}

// NaN is a convenience for building readings with missing metrics.
func NaN() float64 { return math.NaN() }
