// Package runner is the bounded, deterministic fan-out primitive shared
// by the experiment sweeps and the training hot paths. It generalizes
// the worker pool the chaos matrix introduced: callers enumerate
// independent work cells by index, the pool executes them on a fixed
// number of goroutines, and — because every cell derives its randomness
// purely from its own index (see CellSeed) — the results are
// bit-identical for any worker count. That contract is what lets the
// golden pipeline fixture and the worker-parity tests compare outputs
// byte for byte while cmd/experiments saturates all cores.
package runner

import (
	"runtime"
	"sync"
)

// ForEach runs f(0), ..., f(n-1) on a bounded worker pool and blocks
// until every call returned. workers <= 0 uses GOMAXPROCS; workers == 1
// still goes through the pool but degenerates to serial execution.
// Every index runs exactly once even when some calls fail; the error
// for the lowest index is returned, so the error a caller sees does not
// depend on goroutine scheduling.
func ForEach(n, workers int, f func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CellSeed derives an RNG seed from a base seed and a work cell's
// coordinates with a splitmix64-style mix. It is a pure function of its
// arguments — never of the worker that happens to execute the cell — so
// seeding a cell's *rand.Rand from CellSeed keeps a parallel sweep
// bit-identical for any worker count. Adjacent coordinates land on
// well-separated seeds (unlike small additive offsets, which can make
// neighboring cells' linear-congruential streams overlap).
func CellSeed(base int64, coords ...int) int64 {
	z := uint64(base)
	for _, c := range coords {
		z += uint64(int64(c))*0x9E3779B97F4A7C15 + 0x9E3779B97F4A7C15
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
	}
	return int64(z)
}
