package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		n := 57
		counts := make([]int32, n)
		if err := ForEach(n, workers, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(0, 4, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestForEachReturnsLowestIndexError pins the error-selection contract:
// with several failing cells, the caller sees the lowest index's error
// regardless of which worker finished first.
func TestForEachReturnsLowestIndexError(t *testing.T) {
	wantErr := errors.New("cell 3")
	for _, workers := range []int{1, 4, 16} {
		var calls int32
		err := ForEach(20, workers, func(i int) error {
			atomic.AddInt32(&calls, 1)
			switch i {
			case 3:
				return wantErr
			case 11:
				return fmt.Errorf("cell 11")
			}
			return nil
		})
		if !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: got %v, want the lowest failing index's error", workers, err)
		}
		if calls != 20 {
			t.Fatalf("workers=%d: %d calls; every cell must run even when one fails", workers, calls)
		}
	}
}

// TestForEachRace hammers a shared accumulator from many workers so the
// race detector (tier-1 runs with -race) can observe the pool's
// synchronization.
func TestForEachRace(t *testing.T) {
	var sum int64
	if err := ForEach(512, 8, func(i int) error {
		atomic.AddInt64(&sum, int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := int64(512 * 511 / 2); sum != want {
		t.Fatalf("sum %d, want %d", sum, want)
	}
}

func TestCellSeedPureAndDistinct(t *testing.T) {
	if CellSeed(7, 1, 2) != CellSeed(7, 1, 2) {
		t.Fatal("CellSeed is not a pure function of its arguments")
	}
	seen := map[int64][2]int{}
	for a := 0; a < 40; a++ {
		for b := 0; b < 40; b++ {
			s := CellSeed(42, a, b)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) both map to %d", a, b, prev[0], prev[1], s)
			}
			seen[s] = [2]int{a, b}
		}
	}
	if CellSeed(1, 0) == CellSeed(2, 0) {
		t.Fatal("base seed ignored")
	}
	if CellSeed(1, 0, 1) == CellSeed(1, 1, 0) {
		t.Fatal("coordinate order ignored")
	}
}
