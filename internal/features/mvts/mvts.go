// Package mvts reimplements the MVTS-Data Toolkit feature extractor used
// by the paper (Ahmadzadeh et al., SoftwareX 2020): 48 statistical
// features per metric, covering descriptive statistics, absolute
// differences between the descriptive statistics of the first and second
// halves of the series, and long-run trend features such as the longest
// monotonic increase (Sec. III-A).
package mvts

import (
	"math"

	"albadross/internal/stats"
)

// Extractor computes the 48 MVTS features per metric. The zero value is
// ready to use.
type Extractor struct{}

// Name returns "mvts".
func (Extractor) Name() string { return "mvts" }

// featureNames lists the 48 features in extraction order.
var featureNames = []string{
	// Descriptive statistics (20).
	"mean", "median", "min", "max", "std", "var", "skewness", "kurtosis",
	"range", "iqr", "q05", "q25", "q75", "q95", "mean_abs", "rms",
	"mad", "variation_coef", "sum", "abs_energy",
	// Change statistics (6).
	"mean_change", "mean_abs_change", "mean_second_derivative",
	"trend_slope", "trend_intercept", "trend_r",
	// Distribution around the mean (7).
	"count_above_mean", "count_below_mean", "crossings_mean",
	"strike_above_mean", "strike_below_mean", "ratio_beyond_1sigma",
	"binned_entropy_10",
	// Long-run trends (2).
	"longest_monotonic_increase", "longest_monotonic_decrease",
	// First-half/second-half absolute differences (8).
	"halves_abs_diff_mean", "halves_abs_diff_std", "halves_abs_diff_median",
	"halves_abs_diff_min", "halves_abs_diff_max", "halves_abs_diff_var",
	"halves_abs_diff_skewness", "halves_abs_diff_kurtosis",
	// Locations and endpoints (5).
	"argmax_ratio", "argmin_ratio", "first_value", "last_value",
	"num_peaks_3",
}

// FeatureNames returns the 48 per-metric feature names.
func (Extractor) FeatureNames() []string { return featureNames }

// Extract computes the 48 features of one series. Features that are
// undefined for the input (e.g. skewness of a constant series) are NaN.
func (Extractor) Extract(s []float64) []float64 {
	out := make([]float64, 0, len(featureNames))
	n := len(s)
	qs := stats.QuantilesSorted(s, 0.05, 0.25, 0.5, 0.75, 0.95)
	mean := stats.Mean(s)
	out = append(out,
		mean,
		qs[2],
		stats.Min(s),
		stats.Max(s),
		stats.Std(s),
		stats.Var(s),
		stats.Skewness(s),
		stats.Kurtosis(s),
		stats.Range(s),
		qs[3]-qs[1],
		qs[0], qs[1], qs[3], qs[4],
		stats.MeanAbs(s),
		stats.RMS(s),
		stats.MedianAbsDeviation(s),
		stats.VariationCoefficient(s),
		stats.Sum(s),
		stats.AbsEnergy(s),
	)
	slope, intercept, r := stats.LinearTrend(s)
	out = append(out,
		stats.MeanChange(s),
		stats.MeanAbsChange(s),
		stats.MeanSecondDerivativeCentral(s),
		slope, intercept, r,
	)
	out = append(out,
		float64(stats.CountAbove(s, mean)),
		float64(stats.CountBelow(s, mean)),
		float64(stats.CrossingCount(s, mean)),
		float64(stats.LongestStrikeAbove(s, mean)),
		float64(stats.LongestStrikeBelow(s, mean)),
		stats.RatioBeyondRSigma(s, 1),
		stats.BinnedEntropy(s, 10),
		float64(stats.LongestMonotonicIncrease(s)),
		float64(stats.LongestMonotonicDecrease(s)),
	)
	// Halves differences.
	if n >= 2 {
		h1, h2 := s[:n/2], s[n/2:]
		out = append(out,
			math.Abs(stats.Mean(h1)-stats.Mean(h2)),
			math.Abs(stats.Std(h1)-stats.Std(h2)),
			math.Abs(stats.Median(h1)-stats.Median(h2)),
			math.Abs(stats.Min(h1)-stats.Min(h2)),
			math.Abs(stats.Max(h1)-stats.Max(h2)),
			math.Abs(stats.Var(h1)-stats.Var(h2)),
			math.Abs(stats.Skewness(h1)-stats.Skewness(h2)),
			math.Abs(stats.Kurtosis(h1)-stats.Kurtosis(h2)),
		)
	} else {
		for i := 0; i < 8; i++ {
			out = append(out, math.NaN())
		}
	}
	if n > 0 {
		out = append(out,
			float64(stats.ArgMax(s))/float64(n),
			float64(stats.ArgMin(s))/float64(n),
			s[0],
			s[n-1],
		)
	} else {
		out = append(out, math.NaN(), math.NaN(), math.NaN(), math.NaN())
	}
	out = append(out, float64(stats.NumberPeaks(s, 3)))
	return out
}
