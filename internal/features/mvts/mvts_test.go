package mvts

import (
	"math"
	"math/rand"
	"testing"
)

func TestFeatureCountIs48(t *testing.T) {
	e := Extractor{}
	if len(e.FeatureNames()) != 48 {
		t.Fatalf("MVTS declares %d features, paper says 48", len(e.FeatureNames()))
	}
	v := e.Extract([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	if len(v) != 48 {
		t.Fatalf("extract returned %d features, want 48", len(v))
	}
}

func TestUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range (Extractor{}).FeatureNames() {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func idx(t *testing.T, name string) int {
	t.Helper()
	for i, n := range (Extractor{}).FeatureNames() {
		if n == name {
			return i
		}
	}
	t.Fatalf("no feature named %q", name)
	return -1
}

func TestKnownValues(t *testing.T) {
	e := Extractor{}
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	v := e.Extract(s)
	checks := map[string]float64{
		"mean":        4.5,
		"min":         1,
		"max":         8,
		"sum":         36,
		"range":       7,
		"first_value": 1,
		"last_value":  8,
		"mean_change": 1,
		"trend_slope": 1,
	}
	for name, want := range checks {
		got := v[idx(t, name)]
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	// Monotonic series: longest increase is the whole series.
	if got := v[idx(t, "longest_monotonic_increase")]; got != 8 {
		t.Errorf("longest_monotonic_increase = %v, want 8", got)
	}
}

func TestHalvesDiffs(t *testing.T) {
	e := Extractor{}
	// First half all 1s, second half all 5s.
	s := []float64{1, 1, 1, 1, 5, 5, 5, 5}
	v := e.Extract(s)
	if got := v[idx(t, "halves_abs_diff_mean")]; math.Abs(got-4) > 1e-9 {
		t.Fatalf("halves mean diff = %v, want 4", got)
	}
	if got := v[idx(t, "halves_abs_diff_std")]; math.Abs(got) > 1e-9 {
		t.Fatalf("halves std diff = %v, want 0", got)
	}
}

func TestConstantSeries(t *testing.T) {
	e := Extractor{}
	v := e.Extract([]float64{3, 3, 3, 3, 3, 3})
	if v[idx(t, "std")] != 0 || v[idx(t, "var")] != 0 {
		t.Fatal("constant series should have zero spread")
	}
	if !math.IsNaN(v[idx(t, "skewness")]) {
		t.Fatal("skewness of constant series should be NaN")
	}
	if v[idx(t, "binned_entropy_10")] != 0 {
		t.Fatal("constant entropy should be 0")
	}
}

func TestShortAndEmptySeries(t *testing.T) {
	e := Extractor{}
	for _, s := range [][]float64{{}, {7}, {1, 2}} {
		v := e.Extract(s)
		if len(v) != 48 {
			t.Fatalf("short series %v: got %d features", s, len(v))
		}
	}
	v := e.Extract([]float64{7})
	if got := v[idx(t, "mean")]; got != 7 {
		t.Fatalf("single-sample mean = %v", got)
	}
}

func TestSeparatesDifferentSignals(t *testing.T) {
	// Sanity: the feature vector of a trend differs from a flat noisy
	// signal in trend-related features.
	e := Extractor{}
	rng := rand.New(rand.NewSource(1))
	flat := make([]float64, 100)
	trend := make([]float64, 100)
	for i := range flat {
		flat[i] = rng.NormFloat64()
		trend[i] = float64(i)*0.5 + rng.NormFloat64()
	}
	vf := e.Extract(flat)
	vt := e.Extract(trend)
	si := idx(t, "trend_slope")
	if math.Abs(vt[si]-0.5) > 0.1 {
		t.Fatalf("trend slope = %v, want ~0.5", vt[si])
	}
	if math.Abs(vf[si]) > 0.1 {
		t.Fatalf("flat slope = %v, want ~0", vf[si])
	}
}
