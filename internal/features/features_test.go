package features

import (
	"math"
	"testing"

	"albadross/internal/features/mvts"
	"albadross/internal/features/tsfresh"
	"albadross/internal/ts"
)

func block(vals ...[]float64) *ts.Multivariate {
	m := &ts.Multivariate{}
	for _, v := range vals {
		m.Metrics = append(m.Metrics, v)
	}
	return m
}

func TestVectorNames(t *testing.T) {
	e := mvts.Extractor{}
	names := VectorNames(e, []string{"a", "b"})
	if len(names) != 96 {
		t.Fatalf("len = %d, want 96", len(names))
	}
	if names[0] != "a::mean" || names[48] != "b::mean" {
		t.Fatalf("name layout wrong: %q, %q", names[0], names[48])
	}
}

func TestExtractSampleConcatenates(t *testing.T) {
	e := mvts.Extractor{}
	m := block([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40})
	v := ExtractSample(e, m)
	if len(v) != 96 {
		t.Fatalf("len = %d, want 96", len(v))
	}
	if v[0] != 2.5 || v[48] != 25 {
		t.Fatalf("means = %v, %v want 2.5, 25", v[0], v[48])
	}
}

func TestExtractBatchMatchesSequentialAndOrder(t *testing.T) {
	e := tsfresh.Extractor{}
	blocks := make([]*ts.Multivariate, 9)
	for i := range blocks {
		s1 := make([]float64, 64)
		s2 := make([]float64, 64)
		for j := range s1 {
			s1[j] = float64(i*j) * 0.1
			s2[j] = float64(j%5) + float64(i)
		}
		blocks[i] = block(s1, s2)
	}
	want := make([][]float64, len(blocks))
	for i, bl := range blocks {
		want[i] = ExtractSample(e, bl)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		got := ExtractBatch(e, blocks, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: got %d rows, want %d", workers, len(got), len(want))
		}
		for i := range want {
			for j := range want[i] {
				a, b := got[i][j], want[i][j]
				if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
					t.Fatalf("workers=%d: row %d col %d: %v != %v", workers, i, j, a, b)
				}
			}
		}
	}
}

func TestSanitize(t *testing.T) {
	v := []float64{1, math.NaN(), math.Inf(1), math.Inf(-1), -2.5}
	if n := Sanitize(v); n != 3 {
		t.Fatalf("sanitized %d cells, want 3", n)
	}
	want := []float64{1, 0, 0, 0, -2.5}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("v = %v, want %v", v, want)
		}
	}
	if n := Sanitize(v); n != 0 {
		t.Fatal("second pass should find nothing")
	}
	if Sanitize(nil) != 0 {
		t.Fatal("nil vector should be a no-op")
	}
}

// Degraded windows — all-NaN and constant series — must extract to a
// finite vector after Sanitize, whatever non-finite stats the raw
// extraction produced.
func TestSanitizeDegradedWindows(t *testing.T) {
	nan := math.NaN()
	allNaN := make([]float64, 32)
	constant := make([]float64, 32)
	for i := range allNaN {
		allNaN[i] = nan
		constant[i] = 7
	}
	for _, e := range []Extractor{mvts.Extractor{}, tsfresh.Extractor{}} {
		v := ExtractSample(e, block(allNaN, constant))
		Sanitize(v)
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("%s: non-finite feature %d after Sanitize", e.Name(), i)
			}
		}
	}
}

func TestExtractBatchEmpty(t *testing.T) {
	out := ExtractBatch(mvts.Extractor{}, nil, 4)
	if len(out) != 0 {
		t.Fatal("empty batch should return empty")
	}
}
