package features

import "albadross/internal/obs"

// Feature-extraction metrics, registered on the default obs registry at
// import time and documented in docs/OBSERVABILITY.md.
var (
	extractLatency = obs.NewHistogram(obs.Opts{
		Name: "features_extract_seconds",
		Help: "Wall time to extract one sample's full feature vector (ExtractSample call).",
		Unit: "seconds",
	})
	sanitizedTotal = obs.NewCounter(obs.Opts{
		Name: "features_sanitized_nan_total",
		Help: "NaN or infinite feature entries replaced with 0 by Sanitize.",
		Unit: "entries",
	})
)
