package rolling_test

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"albadross/internal/features"
	"albadross/internal/features/rolling"
)

// maxAbs returns the largest magnitude among finite values of s, at
// least 1, as the scale for relative comparisons.
func maxAbs(s []float64) float64 {
	m := 1.0
	for _, v := range s {
		if a := math.Abs(v); a > m && !math.IsInf(v, 0) && !math.IsNaN(v) {
			m = a
		}
	}
	return m
}

// closeAt reports whether a rolling feature value matches the
// reference within tol relative to the window's value scale. NaN must
// match NaN; identical bits (including infinities) always match.
func closeAt(got, want, scale, tol float64) bool {
	if math.Float64bits(got) == math.Float64bits(want) {
		return true
	}
	if math.IsNaN(got) || math.IsNaN(want) {
		return math.IsNaN(got) && math.IsNaN(want)
	}
	limit := tol * scale
	if a := math.Abs(got); a > scale {
		limit = tol * a
	}
	if a := math.Abs(want); tol*a > limit {
		limit = tol * a
	}
	return math.Abs(got-want) <= limit
}

// checkWindow compares a roller emission against the from-scratch
// reference over the same window values.
func checkWindow(t *testing.T, ctx string, r features.Rolling, win []float64, tol float64) {
	t.Helper()
	got := r.Features(nil)
	want := rolling.Extractor{}.Extract(win)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d features, want %d", ctx, len(got), len(want))
	}
	names := rolling.Extractor{}.FeatureNames()
	scale := maxAbs(win)
	for i := range got {
		if !closeAt(got[i], want[i], scale, tol) {
			t.Fatalf("%s: feature %s: rolling %v, from-scratch %v (window %v)",
				ctx, names[i], got[i], want[i], win)
		}
	}
}

// driveSeries pushes a series through a roller, checking equivalence
// with the reference at every step, including the partial-window
// warmup. This is the golden property of ISSUE 7: rolling and batch
// extraction agree on every window to within 1e-9.
func driveSeries(t *testing.T, ctx string, series []float64, window int, tol float64) {
	t.Helper()
	r := rolling.NewRoller(window)
	for i, v := range series {
		r.Push(v)
		lo := i + 1 - window
		if lo < 0 {
			lo = 0
		}
		checkWindow(t, ctx, r, series[lo:i+1], tol)
	}
}

func TestRollerMatchesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	n := 400
	walk := make([]float64, n)
	sine := make([]float64, n)
	offsetNoise := make([]float64, n)
	spiky := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += rng.NormFloat64()
		walk[i] = acc
		sine[i] = 40*math.Sin(float64(i)/7) + rng.NormFloat64()
		offsetNoise[i] = 1e9 + rng.NormFloat64() // tiny variance on a huge offset
		spiky[i] = rng.ExpFloat64()
		if rng.Intn(20) == 0 {
			spiky[i] *= 1e6 // occasional huge outlier
		}
	}
	for _, window := range []int{1, 2, 5, 32, 64} {
		driveSeries(t, "random walk", walk, window, 1e-9)
		driveSeries(t, "sine", sine, window, 1e-9)
		driveSeries(t, "offset noise", offsetNoise, window, 1e-9)
		driveSeries(t, "spiky", spiky, window, 1e-9)
	}
}

// TestRollerStepChange crosses a 1e6x level shift, the worst case for
// anchored power sums: windows spanning the step must still match.
func TestRollerStepChange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 200
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
		if i >= n/2 {
			s[i] = 1e6 + rng.NormFloat64()
		}
	}
	driveSeries(t, "step change", s, 48, 1e-9)
}

// TestRollerConstantAndNearConstant pins the degenerate-variance
// policy: both paths must agree that a numerically constant window has
// zero variance and undefined shape features.
func TestRollerConstantAndNearConstant(t *testing.T) {
	constant := make([]float64, 100)
	for i := range constant {
		constant[i] = 42.5
	}
	driveSeries(t, "constant", constant, 16, 1e-9)
	near := make([]float64, 100)
	for i := range near {
		near[i] = 1e8 + float64(i%2)*1e-7 // range far below 1e-12 of magnitude
	}
	driveSeries(t, "near constant", near, 16, 1e-9)
}

// TestRollerNonFinite pins the non-finite policy: while any NaN or Inf
// is in the window both paths emit all NaNs, and once it falls out of
// the window equivalence resumes.
func TestRollerNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 120
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 10
	}
	s[30] = math.NaN()
	s[31] = math.Inf(1)
	s[70] = math.Inf(-1)
	driveSeries(t, "non-finite", s, 24, 1e-9)
}

func TestRollerReset(t *testing.T) {
	r := rolling.NewRoller(8)
	for i := 0; i < 20; i++ {
		r.Push(float64(i) * 1.5)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", r.Len())
	}
	out := r.Features(nil)
	for i, v := range out {
		if !math.IsNaN(v) {
			t.Fatalf("feature %d after Reset = %v, want NaN", i, v)
		}
	}
	series := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	for _, v := range series {
		r.Push(v)
	}
	checkWindow(t, "post-reset", r, series, 1e-9)
}

// TestExtractEmptyAllNaN pins the empty-series contract shared with
// the other extractors: full-length vector, every entry NaN.
func TestExtractEmptyAllNaN(t *testing.T) {
	e := rolling.Extractor{}
	out := e.Extract(nil)
	if len(out) != len(e.FeatureNames()) {
		t.Fatalf("Extract(nil) returned %d features, declared %d", len(out), len(e.FeatureNames()))
	}
	for i, v := range out {
		if !math.IsNaN(v) {
			t.Fatalf("feature %s = %v on empty series, want NaN", e.FeatureNames()[i], v)
		}
	}
}

// TestPushZeroAllocs gates the hot-path contract BENCH_7 relies on:
// steady-state pushes allocate nothing.
func TestPushZeroAllocs(t *testing.T) {
	r := rolling.NewRoller(64)
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 256)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	for _, v := range vals {
		r.Push(v) // fill past capacity so the ring is in steady state
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		r.Push(vals[i%len(vals)])
		i++
	})
	if allocs != 0 {
		t.Fatalf("Push allocates %.1f objects per call in steady state, want 0", allocs)
	}
}

// TestFeaturesReusesDst checks Features writes into a caller buffer of
// the right length instead of allocating a fresh one.
func TestFeaturesReusesDst(t *testing.T) {
	r := rolling.NewRoller(16)
	for i := 0; i < 16; i++ {
		r.Push(float64(i))
	}
	buf := make([]float64, len(rolling.Extractor{}.FeatureNames()))
	out := r.Features(buf)
	if &out[0] != &buf[0] {
		t.Fatal("Features allocated a new slice despite a correctly-sized dst")
	}
}

// decodeFuzzSeries turns fuzz bytes into a window length and a series:
// first byte picks the window (1..32), every following 8-byte chunk is
// one float64 sample, taken verbatim so NaN/Inf bit patterns survive.
func decodeFuzzSeries(data []byte) (int, []float64) {
	if len(data) == 0 {
		return 1, nil
	}
	window := int(data[0])%32 + 1
	data = data[1:]
	s := make([]float64, 0, len(data)/8)
	for len(data) >= 8 {
		s = append(s, math.Float64frombits(binary.LittleEndian.Uint64(data)))
		data = data[8:]
	}
	if len(s) > 512 {
		s = s[:512]
	}
	return window, s
}

// FuzzRollerEquivalence drives arbitrary byte-derived series through
// push/evict and asserts every emission agrees with the from-scratch
// reference. The fuzz tolerance is looser than the golden 1e-9 (logic
// bugs — wrong eviction, stale sums — produce O(1) errors, which is
// what fuzzing hunts; adversarial bit patterns can legitimately cost a
// few extra ulps). Windows where either path emits non-finite values
// from finite-but-overflowing inputs only require NaN-pattern
// agreement.
func FuzzRollerEquivalence(f *testing.F) {
	le := binary.LittleEndian
	seed := func(window byte, vals ...float64) []byte {
		b := []byte{window}
		for _, v := range vals {
			var chunk [8]byte
			le.PutUint64(chunk[:], math.Float64bits(v))
			b = append(b, chunk[:]...)
		}
		return b
	}
	nan, inf := math.NaN(), math.Inf(1)
	// Window-boundary edges: series exactly one shorter, equal, and one
	// longer than the window.
	f.Add(seed(3, 1, 2))
	f.Add(seed(3, 1, 2, 3))
	f.Add(seed(3, 1, 2, 3, 4))
	// Non-finite values entering and leaving the window.
	f.Add(seed(2, 1, nan, 2, 3, 4))
	f.Add(seed(2, inf, -2, 5, nan, 0, 1))
	f.Add(seed(4, 1, 2, -inf, 3, 4, 5, 6, 7))
	// Constant and near-constant windows around the degeneracy guard.
	f.Add(seed(4, 7, 7, 7, 7, 7, 7))
	f.Add(seed(4, 1e9, 1e9+1e-6, 1e9, 1e9+1e-6, 1e9))
	// Signed zeros, denormals, huge magnitudes.
	f.Add(seed(3, math.Copysign(0, -1), 0, 5e-324, -5e-324, 1e300, -1e300))
	f.Add(seed(5, 1e154, -1e154, 2, 3, 4, 5, 6, 7, 8))
	f.Fuzz(func(t *testing.T, data []byte) {
		window, s := decodeFuzzSeries(data)
		r := rolling.NewRoller(window)
		e := rolling.Extractor{}
		for i, v := range s {
			r.Push(v)
			lo := i + 1 - window
			if lo < 0 {
				lo = 0
			}
			win := s[lo : i+1]
			got := r.Features(nil)
			want := e.Extract(win)
			scale := maxAbs(win)
			for j := range got {
				gotNaN, wantNaN := math.IsNaN(got[j]), math.IsNaN(want[j])
				if gotNaN != wantNaN {
					t.Fatalf("step %d feature %d: NaN mismatch: rolling %v, from-scratch %v",
						i, j, got[j], want[j])
				}
				if gotNaN {
					continue
				}
				if math.IsInf(got[j], 0) || math.IsInf(want[j], 0) || scale > 1e150 {
					continue // overflow regime: NaN agreement is the contract
				}
				if !closeAt(got[j], want[j], scale, 1e-7) {
					t.Fatalf("step %d feature %d: rolling %v, from-scratch %v (window %v)",
						i, j, got[j], want[j], win)
				}
			}
		}
	})
}
