// Package rolling implements an incremental sliding-window feature
// extractor for the streaming path (Sec. III-A applied online). The
// batch extractors (features/mvts, features/tsfresh) recompute every
// feature from scratch each time the window advances; at stream rates
// that makes feature extraction the dominant per-sample cost. A Roller
// instead maintains running state that is updated in O(1) amortized
// time per pushed sample:
//
//   - anchor-shifted power sums s1..s4 for mean, variance, skewness and
//     kurtosis (central moments via the standard shift identities),
//   - a sorted mirror of the window for exact order statistics —
//     min, max, and the quantile family — at O(log w) search plus one
//     memmove per update,
//   - rolling pairwise sums for mean_abs_change and the lag-1..5
//     autocorrelation numerators, and a position-weighted sum for the
//     linear-trend family,
//   - the spectral features reuse internal/fft's Welch PSD on the
//     linearized window at emission time, so emission is O(w log w)
//     while pushes stay cheap.
//
// Numerical contract: Extractor.Extract is the from-scratch reference;
// Roller.Features must agree with it on every window to within 1e-9
// (relative to the window's value scale). Both paths funnel through one
// shared emission routine, so they can only disagree through the
// accumulated sums themselves. Two mechanisms keep that disagreement at
// ulp scale: the sums are rebuilt from the ring every window-length
// pushes (bounding error accumulation), and emission rebuilds them
// eagerly whenever catastrophic cancellation is detected (central
// moments tiny relative to the raw power sums, or a non-finite sum
// state left behind by overflowing values). After such a rebuild the
// roller's sums are bitwise identical to the reference's.
//
// Non-finite policy: a window containing any NaN or Inf yields an
// all-NaN vector (the stream layer repairs gaps before pushing, so a
// non-finite here means an unrepaired hole; features over it would be
// meaningless). Sanitize downstream maps the NaNs to zeros.
package rolling

import (
	"fmt"
	"math"
	"sort"

	"albadross/internal/features"
	"albadross/internal/fft"
)

// maxLag is the largest autocorrelation lag emitted.
const maxLag = 5

// welchSegment is the Welch PSD segment length, matching the batch
// tsfresh extractor so spectral features are comparable across paths.
const welchSegment = 64

// degenEps classifies a window as numerically constant: when the value
// range is at most degenEps times the value magnitude, variance is
// reported as exactly 0 and the scale-normalized features (skewness,
// kurtosis, autocorrelation, trend correlation) as NaN. The test uses
// the window's exact min/max, which both extraction paths share
// bitwise, so they always agree on degeneracy.
const degenEps = 1e-12

// ratioFloor triggers an eager rebuild of the rolling sums at emission
// time: when a central moment is below ratioFloor times its raw power
// sum, the subtraction has cancelled too many leading digits for the
// incrementally-maintained sums to be trustworthy at 1e-9.
const ratioFloor = 1e-3

var featureNames = buildNames()

func buildNames() []string {
	names := []string{
		"mean", "variance", "stddev", "minimum", "maximum", "range",
		"skewness", "kurtosis", "sum", "abs_energy", "root_mean_square", "mean_abs",
		"quantile_q05", "quantile_q25", "median", "quantile_q75", "quantile_q95", "iqr",
		"mean_change", "mean_abs_change",
		"trend_slope", "trend_intercept", "trend_r",
	}
	for lag := 1; lag <= maxLag; lag++ {
		names = append(names, fmt.Sprintf("autocorr_lag%d", lag))
	}
	names = append(names,
		"spectral_centroid", "spectral_variance", "spectral_skew", "spectral_kurtosis",
		"psd_max", "psd_argmax_freq", "psd_total",
		"zero_fraction", "first_value", "last_value",
	)
	return names
}

// Extractor computes the rolling feature set from scratch over one
// series. It is the golden reference the incremental Roller is tested
// against, and doubles as a drop-in batch extractor ("rolling") for the
// experiment harness. The zero value is ready to use.
type Extractor struct{}

// Name returns "rolling".
func (Extractor) Name() string { return "rolling" }

// FeatureNames lists the per-metric feature names in extraction order.
func (Extractor) FeatureNames() []string { return featureNames }

// NewRolling returns incremental per-series state whose Features output
// tracks Extract over the trailing window values.
func (Extractor) NewRolling(window int) features.Rolling { return NewRoller(window) }

// Extract computes the feature vector of one series by a direct scan.
// An empty series or one containing non-finite values yields all NaNs.
func (Extractor) Extract(s []float64) []float64 {
	dst := make([]float64, len(featureNames))
	n := len(s)
	if n == 0 {
		return fillNaN(dst)
	}
	for _, v := range s {
		if !isFinite(v) {
			return fillNaN(dst)
		}
	}
	a := scan(n, s[0], func(i int) float64 { return s[i] })
	sorted := append([]float64(nil), s...)
	sort.Float64s(sorted)
	emitInto(dst, &a, s, sorted)
	return dst
}

// interface conformance, checked at compile time.
var _ features.Incremental = Extractor{}
var _ features.Rolling = (*Roller)(nil)

// agg holds the window sums both extraction paths reduce to before
// emission. All z terms are values shifted by the anchor k; non-finite
// values contribute zero to every sum (and are tracked separately by
// the Roller, which refuses to emit while any is in the window).
type agg struct {
	n  int     // window length
	k  float64 // anchor subtracted from every value before summing
	s1 float64 // Σ z
	s2 float64 // Σ z²
	s3 float64 // Σ z³
	s4 float64 // Σ z⁴
	// absSum is Σ |x| over the raw (unshifted) values.
	absSum float64
	// diffAbs is Σ |x[i] - x[i-1]| over adjacent finite pairs.
	diffAbs float64
	// tx is Σ i·z over window positions i = 0..n-1, the covariance
	// numerator of the linear-trend fit.
	tx float64
	// cross[L-1] is Σ z[i]·z[i+L], the autocorrelation numerator.
	cross [maxLag]float64
	// zeros counts exact-zero values for zero_fraction.
	zeros int
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// zOf is the anchored value: v - k for finite v, 0 otherwise.
func zOf(v, k float64) float64 {
	if !isFinite(v) {
		return 0
	}
	return v - k
}

// diffPair is one adjacent-difference contribution: |b - a| when both
// ends are finite, 0 otherwise.
func diffPair(a, b float64) float64 {
	if isFinite(a) && isFinite(b) {
		return math.Abs(b - a)
	}
	return 0
}

// scan builds the window sums by one pass over at(0..n-1), anchored at
// k. It is the single accumulation routine shared by the reference
// extractor and the Roller's rebuilds, so that after a rebuild the two
// paths hold bitwise-identical sums.
func scan(n int, k float64, at func(int) float64) agg {
	a := agg{n: n, k: k}
	for i := 0; i < n; i++ {
		v := at(i)
		if isFinite(v) {
			z := v - k
			z2 := z * z
			a.s1 += z
			a.s2 += z2
			a.s3 += z2 * z
			a.s4 += z2 * z2
			a.absSum += math.Abs(v)
		}
		if v == 0 {
			a.zeros++
		}
		a.tx += float64(i) * zOf(v, k)
		if i > 0 {
			a.diffAbs += diffPair(at(i-1), v)
		}
		for lag := 1; lag <= maxLag && lag <= i; lag++ {
			a.cross[lag-1] += zOf(at(i-lag), k) * zOf(v, k)
		}
	}
	return a
}

// fillNaN overwrites dst with NaNs and returns it.
func fillNaN(dst []float64) []float64 {
	nan := math.NaN()
	for i := range dst {
		dst[i] = nan
	}
	return dst
}

// quantileSorted returns the q-quantile of an ascending slice by linear
// interpolation at rank q·(n-1), the convention stats.Quantile uses.
func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	h := q * float64(n-1)
	lo := int(h)
	if lo >= n-1 {
		return s[n-1]
	}
	return s[lo] + (h-float64(lo))*(s[lo+1]-s[lo])
}

// emitInto renders the feature vector from the window sums, the window
// in order (win), and its ascending copy (sorted). Both extraction
// paths call exactly this routine, so any rolling-vs-scratch deviation
// originates in the sums, never the feature formulas. The caller
// guarantees n >= 1 and an all-finite window.
func emitInto(dst []float64, a *agg, win, sorted []float64) {
	n := a.n
	fn := float64(n)
	if fn < 1 {
		fillNaN(dst)
		return
	}
	nan := math.NaN()
	mean, m2, m3, m4 := moments(a)

	mn, mx := sorted[0], sorted[n-1]
	amax := math.Abs(mn)
	if x := math.Abs(mx); x > amax {
		amax = x
	}
	rng := mx - mn
	// Degeneracy from the exact range, which both paths share bitwise:
	// a numerically constant window has variance 0 by fiat and no
	// defined shape or correlation features. m2 == 0 catches windows
	// whose true variance underflows.
	degenerate := rng <= degenEps*amax || m2 == 0
	variance := 0.0
	if !degenerate {
		variance = m2 / fn
	}
	sd := 0.0
	if variance > 0 {
		sd = math.Sqrt(variance)
	}

	i := 0
	put := func(v float64) { dst[i] = v; i++ }

	put(mean)
	put(variance)
	put(sd)
	put(mn)
	put(mx)
	put(rng)
	if degenerate || sd <= 0 {
		put(nan) // skewness
		put(nan) // kurtosis
	} else {
		put(m3 / fn / (sd * sd * sd))
		put(m4/fn/(variance*variance) - 3)
	}
	put(fn*a.k + a.s1) // sum
	ae := a.s2 + 2*a.k*a.s1 + fn*a.k*a.k
	if ae < 0 {
		ae = 0 // cancellation noise; Σx² is nonnegative
	}
	put(ae)
	put(math.Sqrt(ae / fn))
	put(a.absSum / fn)

	q25 := quantileSorted(sorted, 0.25)
	q75 := quantileSorted(sorted, 0.75)
	put(quantileSorted(sorted, 0.05))
	put(q25)
	put(quantileSorted(sorted, 0.5))
	put(q75)
	put(quantileSorted(sorted, 0.95))
	put(q75 - q25)

	nm1 := fn - 1
	if nm1 > 0 {
		put((win[n-1] - win[0]) / nm1)
		put(a.diffAbs / nm1)
	} else {
		put(nan)
		put(nan)
	}

	// Linear trend over positions 0..n-1: with t̄ = (n-1)/2 the index
	// sum of squares is Stt = n(n²-1)/12 and the covariance numerator
	// is tx - t̄·s1 (anchor-invariant).
	stt := fn * (fn*fn - 1) / 12
	if stt > 0 {
		tbar := nm1 / 2
		sxy := a.tx - tbar*a.s1
		slope := sxy / stt
		put(slope)
		put(mean - slope*tbar)
		if den := stt * m2; den > 0 && !degenerate {
			put(sxy / math.Sqrt(den))
		} else {
			put(nan)
		}
	} else {
		put(nan)
		put(nan)
		put(nan)
	}

	// Autocorrelation at lags 1..maxLag, tsfresh's estimator:
	// Σ(z[i]-z̄)(z[i+L]-z̄) / ((n-L)·m2/n), expanded so the numerator
	// needs only the rolling cross sum plus the first/last L anchored
	// values read off the window at emission.
	zbar := a.s1 / fn
	for lag := 1; lag <= maxLag; lag++ {
		if n <= lag || degenerate {
			put(nan)
			continue
		}
		var headL, tailL float64
		for j := 0; j < lag; j++ {
			headL += win[j] - a.k
			tailL += win[n-1-j] - a.k
		}
		num := a.cross[lag-1] - zbar*(2*a.s1-headL-tailL) + float64(n-lag)*zbar*zbar
		if den := float64(n-lag) * (m2 / fn); den > 0 {
			put(num / den)
		} else {
			put(nan)
		}
	}

	// Spectral summary via Welch's method at 1 Hz, as in the batch
	// tsfresh extractor. The PSD is computed from the same window bits
	// in both paths, so these features are bitwise identical.
	seg := n
	if seg > welchSegment {
		seg = welchSegment
	}
	freqs, psd := fft.Welch(win, 1, seg)
	if len(psd) == 0 {
		for j := 0; j < 7; j++ {
			put(nan)
		}
	} else {
		c, v, sk, ku := fft.SpectralMoments(freqs, psd)
		put(c)
		put(v)
		put(sk)
		put(ku)
		arg, pmax, total := 0, psd[0], 0.0
		for j, p := range psd {
			total += p
			if p > pmax {
				pmax = p
				arg = j
			}
		}
		put(pmax)
		put(freqs[arg])
		put(total)
	}

	put(float64(a.zeros) / fn)
	put(win[0])
	put(win[n-1])
}

// moments converts the shifted power sums to the mean and the 2nd-4th
// central moments (times n) via the standard shift identities.
func moments(a *agg) (mean, m2, m3, m4 float64) {
	fn := float64(a.n)
	if fn < 1 {
		return 0, 0, 0, 0
	}
	zb := a.s1 / fn
	mean = a.k + zb
	m2 = a.s2 - a.s1*zb
	m3 = a.s3 - 3*zb*a.s2 + 2*a.s1*zb*zb
	m4 = a.s4 - 4*zb*a.s3 + 6*zb*zb*a.s2 - 3*a.s1*zb*zb*zb
	if m2 < 0 {
		m2 = 0
	}
	if m4 < 0 {
		m4 = 0
	}
	return mean, m2, m3, m4
}

// Roller is the incremental sliding-window state for one metric. Push
// appends a sample (evicting the oldest once the window is full) in
// O(1) amortized time and zero steady-state allocations; Features
// renders the current window's feature vector. A Roller is not safe
// for concurrent use; the stream layer owns one per metric inside its
// existing lock.
type Roller struct {
	w    int       // window capacity
	ring []float64 // circular buffer, oldest at head
	head int
	a    agg // running sums over the current window contents
	// nonFinite counts NaN/Inf values currently in the window; any
	// makes Features emit all NaNs.
	nonFinite int
	// sorted mirrors the window's finite values in ascending order for
	// exact min/max/quantiles.
	sorted []float64
	// sincePack counts pushes since the sums were last rebuilt from
	// the ring; a rebuild every w pushes bounds floating-point drift.
	sincePack int
	// peak2 and peakAbs track the largest z² and |x| summed since the
	// last rebuild — including values already evicted. A past outlier
	// leaves absolute residue of order ε·peak in the sums after its
	// add/subtract round trip, invisible to the moment-vs-power-sum
	// ratio; emission rebuilds when current moments are small against
	// these peaks.
	peak2   float64
	peakAbs float64
	scratch []float64 // linearization buffer for emission
}

// NewRoller returns a Roller over a trailing window of the given
// length. It panics if window < 1 (programmer error).
func NewRoller(window int) *Roller {
	if window < 1 {
		panic("rolling: window must be >= 1")
	}
	return &Roller{
		w:       window,
		ring:    make([]float64, window),
		sorted:  make([]float64, 0, window),
		scratch: make([]float64, 0, window),
	}
}

// Window returns the configured window length.
func (r *Roller) Window() int { return r.w }

// Len returns the number of samples currently held, at most Window().
func (r *Roller) Len() int { return r.a.n }

// Reset empties the window without releasing buffers.
func (r *Roller) Reset() {
	r.head = 0
	r.a = agg{}
	r.nonFinite = 0
	r.sorted = r.sorted[:0]
	r.sincePack = 0
	r.peak2, r.peakAbs = 0, 0
}

// at returns the value at window position i (0 = oldest).
func (r *Roller) at(i int) float64 { return r.ring[(r.head+i)%r.w] }

// Push appends v to the window, evicting the oldest sample when full.
func (r *Roller) Push(v float64) {
	if r.a.n == r.w {
		r.evict()
	}
	i := r.a.n // window position of the new value
	z := zOf(v, r.a.k)
	for lag := 1; lag <= maxLag && lag <= i; lag++ {
		r.a.cross[lag-1] += zOf(r.at(i-lag), r.a.k) * z
	}
	if i > 0 {
		r.a.diffAbs += diffPair(r.at(i-1), v)
	}
	r.ring[(r.head+i)%r.w] = v
	r.a.n++
	if isFinite(v) {
		z2 := z * z
		r.a.s1 += z
		r.a.s2 += z2
		r.a.s3 += z2 * z
		r.a.s4 += z2 * z2
		av := math.Abs(v)
		r.a.absSum += av
		if z2 > r.peak2 {
			r.peak2 = z2
		}
		if av > r.peakAbs {
			r.peakAbs = av
		}
		r.insertSorted(v)
	} else {
		r.nonFinite++
	}
	r.a.tx += float64(i) * z
	if v == 0 {
		r.a.zeros++
	}
	r.sincePack++
	if r.sincePack >= r.w {
		r.rebuild()
	}
}

// evict removes the oldest sample from every running sum.
func (r *Roller) evict() {
	v0 := r.ring[r.head]
	z0 := zOf(v0, r.a.k)
	n := r.a.n
	for lag := 1; lag <= maxLag && lag < n; lag++ {
		r.a.cross[lag-1] -= z0 * zOf(r.at(lag), r.a.k)
	}
	if n > 1 {
		r.a.diffAbs -= diffPair(v0, r.at(1))
	}
	if isFinite(v0) {
		z2 := z0 * z0
		r.a.s1 -= z0
		r.a.s2 -= z2
		r.a.s3 -= z2 * z0
		r.a.s4 -= z2 * z2
		r.a.absSum -= math.Abs(v0)
		r.removeSorted(v0)
	} else {
		r.nonFinite--
	}
	// Surviving positions all shift down by one, so Σ i·z loses the
	// survivors' plain sum; s1 already excludes z0 at this point.
	r.a.tx -= r.a.s1
	if v0 == 0 {
		r.a.zeros--
	}
	r.a.n--
	r.head = (r.head + 1) % r.w
}

// insertSorted adds a finite value to the sorted mirror.
func (r *Roller) insertSorted(v float64) {
	i := sort.SearchFloat64s(r.sorted, v)
	r.sorted = append(r.sorted, 0)
	copy(r.sorted[i+1:], r.sorted[i:])
	r.sorted[i] = v
}

// removeSorted drops one occurrence of a finite value from the sorted
// mirror. The value always comes from the ring, so a numerically equal
// element is guaranteed present.
func (r *Roller) removeSorted(v float64) {
	i := sort.SearchFloat64s(r.sorted, v)
	r.sorted = append(r.sorted[:i], r.sorted[i+1:]...)
}

// rebuild recomputes every sum from the ring with a fresh anchor (the
// oldest finite value), resetting accumulated floating-point drift.
// After a rebuild on an all-finite window the sums are bitwise
// identical to what the reference extractor computes.
func (r *Roller) rebuild() {
	n := r.a.n
	k := 0.0
	for i := 0; i < n; i++ {
		if v := r.at(i); isFinite(v) {
			k = v
			break
		}
	}
	r.a = scan(n, k, r.at)
	r.peak2, r.peakAbs = 0, 0
	for i := 0; i < n; i++ {
		v := r.at(i)
		if !isFinite(v) {
			continue
		}
		z := v - k
		if z2 := z * z; z2 > r.peak2 {
			r.peak2 = z2
		}
		if av := math.Abs(v); av > r.peakAbs {
			r.peakAbs = av
		}
	}
	r.sincePack = 0
}

// sumsSuspect reports whether emission must rebuild first: a central
// moment has cancelled below ratioFloor of its raw power sum, or an
// overflow poisoned the running state (an Inf that was later evicted
// leaves NaNs behind that subtraction cannot undo).
func (r *Roller) sumsSuspect() bool {
	state := r.a.s1 + r.a.s2 + r.a.s3 + r.a.s4 + r.a.tx + r.a.absSum + r.a.diffAbs
	for _, c := range r.a.cross {
		state += c
	}
	if !isFinite(state) {
		return true
	}
	if r.a.s2 > 0 {
		_, m2, _, m4 := moments(&r.a)
		if m2 < ratioFloor*r.a.s2 || m4 < ratioFloor*r.a.s4 {
			return true
		}
		if m2 < ratioFloor*r.peak2 || m4 < ratioFloor*(r.peak2*r.peak2) {
			return true
		}
	}
	if r.peakAbs > 0 && r.a.absSum < ratioFloor*r.peakAbs {
		return true
	}
	// Deep-subnormal regime: when every |x| or z² lives near the bottom
	// of the float64 range, the power sums round in gradual underflow
	// where the two paths' different accumulation orders diverge badly.
	// A rebuild reproduces the reference scan bitwise, restoring exact
	// agreement (at O(w) per emission for these pathological windows).
	if r.peakAbs > 0 && r.peakAbs < 1e-140 {
		return true
	}
	if r.peak2 > 0 && r.peak2 < 1e-150 {
		return true
	}
	return false
}

// Features renders the feature vector of the current window contents
// into dst (allocating when dst is not len(FeatureNames())) and
// returns it. An empty window, or one holding any non-finite value,
// yields all NaNs. For any window state, the output matches
// Extractor.Extract over the same values to within 1e-9 of the
// window's value scale.
func (r *Roller) Features(dst []float64) []float64 {
	if len(dst) != len(featureNames) {
		dst = make([]float64, len(featureNames))
	}
	n := r.a.n
	if n == 0 || r.nonFinite > 0 {
		return fillNaN(dst)
	}
	if r.sumsSuspect() {
		r.rebuild()
	}
	win := r.scratch[:0]
	for i := 0; i < n; i++ {
		win = append(win, r.at(i))
	}
	r.scratch = win[:0]
	emitInto(dst, &r.a, win, r.sorted)
	return dst
}
