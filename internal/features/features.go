// Package features defines the statistical feature-extraction stage of the
// ALBADross pipeline (Sec. III-A of the paper) and utilities for applying
// an extractor to whole multivariate samples in parallel.
//
// The paper uses two open-source toolkits — MVTS (48 features per metric)
// and TSFRESH (794 features per metric) — re-implemented here as the
// sub-packages features/mvts and features/tsfresh. Both satisfy Extractor.
package features

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"albadross/internal/obs"
	"albadross/internal/ts"
)

// Extractor turns one metric's (cleaned) time series into a fixed-length
// vector of statistical features.
type Extractor interface {
	// Name identifies the toolkit ("mvts" or "tsfresh").
	Name() string
	// FeatureNames lists the per-metric feature names, in the order
	// Extract emits them.
	FeatureNames() []string
	// Extract computes the features of one series. The result always has
	// len(FeatureNames()) entries; undefined features are NaN.
	Extract(s []float64) []float64
}

// Rolling is incremental per-series extraction state: a sliding window
// that accepts one sample at a time and can render the feature vector
// of its current contents on demand. It exists for the streaming path,
// where recomputing every feature from scratch per emitted window
// dominates per-sample cost. Implementations are not safe for
// concurrent use; callers own the locking.
type Rolling interface {
	// Push appends one sample, evicting the oldest once the window is
	// full. It must run in amortized O(1) with no steady-state
	// allocations.
	Push(v float64)
	// Features renders the feature vector of the current window into
	// dst (allocating when dst has the wrong length) and returns it.
	// The result must match the parent Extractor's Extract over the
	// same values to within 1e-9 of the window's value scale.
	Features(dst []float64) []float64
	// Len reports how many samples the window currently holds.
	Len() int
	// Reset empties the window without releasing buffers.
	Reset()
}

// Incremental is an Extractor that can also extract incrementally over
// a sliding window. The stream layer upgrades to the rolling path when
// its configured extractor implements this interface.
type Incremental interface {
	Extractor
	// NewRolling returns fresh rolling state over a trailing window of
	// the given length, with Features consistent with Extract.
	NewRolling(window int) Rolling
}

// VectorNames returns the feature names of a full sample vector: the cross
// product of metric names and per-metric feature names, in extraction
// order ("metricName::featureName").
func VectorNames(e Extractor, metricNames []string) []string {
	fn := e.FeatureNames()
	out := make([]string, 0, len(metricNames)*len(fn))
	for _, m := range metricNames {
		for _, f := range fn {
			out = append(out, fmt.Sprintf("%s::%s", m, f))
		}
	}
	return out
}

// Sanitize replaces every NaN or infinite entry of a feature vector with
// 0 in place and returns the number of replaced entries. Extractors mark
// undefined features (skewness of a constant series, trends of an
// all-NaN window) as NaN by design; consumers that feed models directly —
// the streaming path, chiefly — sanitize so a degraded window yields a
// finite vector instead of NaN-poisoning the classifier.
func Sanitize(v []float64) int {
	n := 0
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			v[i] = 0
			n++
		}
	}
	if n > 0 {
		sanitizedTotal.Add(uint64(n))
	}
	return n
}

// ExtractSample computes the feature vector of one multivariate sample by
// concatenating per-metric features in metric order.
func ExtractSample(e Extractor, m *ts.Multivariate) []float64 {
	defer obs.StartSpan(extractLatency).End()
	per := len(e.FeatureNames())
	out := make([]float64, 0, per*len(m.Metrics))
	for _, s := range m.Metrics {
		v := e.Extract(s)
		if len(v) != per {
			panic(fmt.Sprintf("features: extractor %s returned %d features, declared %d", e.Name(), len(v), per))
		}
		out = append(out, v...)
	}
	return out
}

// ExtractBatch computes feature vectors for many samples concurrently,
// preserving input order. workers <= 0 uses GOMAXPROCS.
func ExtractBatch(e Extractor, blocks []*ts.Multivariate, workers int) [][]float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(blocks) {
		workers = len(blocks)
	}
	out := make([][]float64, len(blocks))
	if len(blocks) == 0 {
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = ExtractSample(e, blocks[i])
			}
		}()
	}
	for i := range blocks {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
