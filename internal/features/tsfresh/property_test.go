package tsfresh

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// featIdx maps feature names to their position in Extract's output.
func featIdx(t testing.TB) map[string]int {
	t.Helper()
	idx := map[string]int{}
	for i, n := range (Extractor{}).FeatureNames() {
		idx[n] = i
	}
	return idx
}

// randSeries draws one random test series; the generator varies length
// and scale so properties are checked across regimes.
func randSeries(rng *rand.Rand) []float64 {
	n := 16 + rng.Intn(240)
	scale := math.Pow(10, float64(rng.Intn(5)-2))
	s := make([]float64, n)
	level := rng.NormFloat64() * scale
	for i := range s {
		level += rng.NormFloat64() * scale * 0.3
		s[i] = level
	}
	return s
}

// naiveAutocorr is the textbook definition: sum of lagged products of
// centered values over the variance mass.
func naiveAutocorr(s []float64, lag int) float64 {
	n := len(s)
	if lag >= n {
		return math.NaN()
	}
	mean := 0.0
	for _, v := range s {
		mean += v
	}
	mean /= float64(n)
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		den += (s[i] - mean) * (s[i] - mean)
	}
	for i := 0; i < n-lag; i++ {
		num += (s[i] - mean) * (s[i+lag] - mean)
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// naiveQuantile is the sort-based linear-interpolation quantile.
func naiveQuantile(s []float64, q float64) float64 {
	c := append([]float64{}, s...)
	sort.Float64s(c)
	pos := q * float64(len(c)-1)
	lo := int(pos)
	if lo+1 >= len(c) {
		return c[len(c)-1]
	}
	frac := pos - float64(lo)
	return c[lo] + frac*(c[lo+1]-c[lo])
}

// naiveCidCe is sqrt of the summed squared first differences.
func naiveCidCe(s []float64) float64 {
	sum := 0.0
	for i := 1; i < len(s); i++ {
		d := s[i] - s[i-1]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// naiveC3 is tsfresh's lag-l non-linearity statistic:
// mean of x[i+2l]*x[i+l]*x[i].
func naiveC3(s []float64, lag int) float64 {
	n := len(s) - 2*lag
	if n <= 0 {
		return math.NaN()
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s[i+2*lag] * s[i+lag] * s[i]
	}
	return sum / float64(n)
}

// relErr compares with a tolerance that scales with magnitude.
func relErr(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1e-9 {
		return d
	}
	return d / m
}

// TestOptimizedMatchesNaiveReferences cross-checks the production
// implementations against independent textbook versions on random
// series.
func TestOptimizedMatchesNaiveReferences(t *testing.T) {
	idx := featIdx(t)
	e := Extractor{}
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		s := randSeries(rng)
		out := e.Extract(s)
		for _, lag := range []int{1, 2, 5, 10} {
			want := naiveAutocorr(s, lag)
			got := out[idx[nameOf(t, idx, "autocorr_lag", lag)]]
			if !agreeOrBothNaN(got, want, 1e-9) {
				t.Fatalf("trial %d: autocorr_lag%d = %v, naive %v (n=%d)", trial, lag, got, want, len(s))
			}
		}
		for _, q := range []int{1, 3, 5, 7, 9} {
			want := naiveQuantile(s, float64(q)/10)
			got := out[idx[nameOf(t, idx, "quantile_q", q)]]
			if !agreeOrBothNaN(got, want, 1e-9) {
				t.Fatalf("trial %d: quantile_q%d0 = %v, naive %v", trial, q, got, want)
			}
		}
		if got, want := out[idx["cid_ce_raw"]], naiveCidCe(s); !agreeOrBothNaN(got, want, 1e-9) {
			t.Fatalf("trial %d: cid_ce_raw = %v, naive %v", trial, got, want)
		}
		for _, lag := range []int{1, 2, 3} {
			want := naiveC3(s, lag)
			got := out[idx[nameOf(t, idx, "c3_lag", lag)]]
			if !agreeOrBothNaN(got, want, 1e-9) {
				t.Fatalf("trial %d: c3_lag%d = %v, naive %v", trial, lag, got, want)
			}
		}
	}
}

// nameOf formats an indexed feature name and asserts it exists.
func nameOf(t testing.TB, idx map[string]int, prefix string, k int) string {
	t.Helper()
	name := prefix
	if prefix == "quantile_q" {
		name = prefix + string(rune('0'+k)) + "0"
	} else {
		name = prefix + itoa(k)
	}
	if _, ok := idx[name]; !ok {
		t.Fatalf("no feature named %q", name)
	}
	return name
}

func itoa(k int) string {
	if k >= 10 {
		return string(rune('0'+k/10)) + string(rune('0'+k%10))
	}
	return string(rune('0' + k))
}

func agreeOrBothNaN(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return relErr(a, b) <= tol
}

// TestShiftInvariance: features of centered statistics (autocorrelation,
// cid_ce, crossings of own quantiles, zero-ish measures on diffs) must
// not move under a constant level shift.
func TestShiftInvariance(t *testing.T) {
	idx := featIdx(t)
	e := Extractor{}
	rng := rand.New(rand.NewSource(202))
	invariant := []string{
		"autocorr_lag1", "autocorr_lag5", "cid_ce_raw",
		"crossings_q25", "crossings_q75",
		"num_peaks_1", "num_peaks_5",
		"last_loc_max_ratio", "last_loc_min_ratio",
	}
	for trial := 0; trial < 25; trial++ {
		s := randSeries(rng)
		shift := 10 + rng.Float64()*100
		shifted := make([]float64, len(s))
		for i := range s {
			shifted[i] = s[i] + shift
		}
		a, b := e.Extract(s), e.Extract(shifted)
		for _, name := range invariant {
			if !agreeOrBothNaN(a[idx[name]], b[idx[name]], 1e-6) {
				t.Fatalf("trial %d: %s moved under +%.1f shift: %v -> %v",
					trial, name, shift, a[idx[name]], b[idx[name]])
			}
		}
	}
}

// TestScaleEquivariance: positively-scaled input must scale quantiles
// and cid_ce linearly and leave scale-free shape statistics
// (autocorrelation, ratio-type features) untouched.
func TestScaleEquivariance(t *testing.T) {
	idx := featIdx(t)
	e := Extractor{}
	rng := rand.New(rand.NewSource(303))
	scaleFree := []string{
		"autocorr_lag1", "autocorr_lag3", "autocorr_lag10",
		"last_loc_max_ratio", "last_loc_min_ratio",
		"num_peaks_1", "crossings_q25",
	}
	linear := []string{"quantile_q10", "quantile_q50", "quantile_q90", "cid_ce_raw"}
	for trial := 0; trial < 25; trial++ {
		s := randSeries(rng)
		k := 0.5 + rng.Float64()*9.5
		scaled := make([]float64, len(s))
		for i := range s {
			scaled[i] = s[i] * k
		}
		a, b := e.Extract(s), e.Extract(scaled)
		for _, name := range scaleFree {
			if !agreeOrBothNaN(a[idx[name]], b[idx[name]], 1e-6) {
				t.Fatalf("trial %d: %s moved under x%.2f scale: %v -> %v",
					trial, name, k, a[idx[name]], b[idx[name]])
			}
		}
		for _, name := range linear {
			if !agreeOrBothNaN(a[idx[name]]*k, b[idx[name]], 1e-6) {
				t.Fatalf("trial %d: %s not linear under x%.2f: %v*k != %v",
					trial, name, k, a[idx[name]], b[idx[name]])
			}
		}
	}
}

// TestFiniteOnFiniteInput: on fully finite input every extracted value
// is finite or NaN (the documented "undefined" marker) — never ±Inf,
// and after Sanitize-style replacement the vector is model-safe.
func TestFiniteOnFiniteInput(t *testing.T) {
	e := Extractor{}
	names := e.FeatureNames()
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 40; trial++ {
		s := randSeries(rng)
		for i, v := range e.Extract(s) {
			if math.IsInf(v, 0) {
				t.Fatalf("trial %d: feature %s is %v on finite input", trial, names[i], v)
			}
		}
	}
}

// TestDegenerateInputs: empty, single-sample, and constant series must
// produce full-length vectors of finite-or-NaN values without panicking.
func TestDegenerateInputs(t *testing.T) {
	e := Extractor{}
	names := e.FeatureNames()
	cases := map[string][]float64{
		"empty":          {},
		"single":         {3.7},
		"pair":           {1, 1},
		"constant":       {5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5},
		"constant_zero":  make([]float64, 64),
		"all_nan":        {math.NaN(), math.NaN(), math.NaN(), math.NaN()},
		"tiny_magnitude": {1e-300, 2e-300, 1e-300, 3e-300, 1e-300, 2e-300, 1e-300, 2e-300},
		"huge_magnitude": {1e150, 2e150, -1e150, 3e150, 1e150, -2e150, 2e150, 1e150},
	}
	for name, s := range cases {
		out := e.Extract(s)
		if len(out) != len(names) {
			t.Fatalf("%s: %d features, want %d", name, len(out), len(names))
		}
		for i, v := range out {
			if math.IsInf(v, 0) {
				t.Fatalf("%s: feature %s = %v", name, names[i], v)
			}
		}
	}
	// A constant series has zero variance: autocorrelation is undefined
	// (NaN), not garbage.
	idx := featIdx(t)
	out := e.Extract(cases["constant"])
	if v := out[idx["autocorr_lag1"]]; !math.IsNaN(v) && v != 0 {
		t.Fatalf("constant series autocorr_lag1 = %v, want NaN or 0", v)
	}
	if v := out[idx["quantile_q50"]]; v != 5 {
		t.Fatalf("constant series quantile_q50 = %v, want 5", v)
	}
}
