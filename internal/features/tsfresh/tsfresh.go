// Package tsfresh reimplements the TSFRESH feature extractor used by the
// paper (Christ et al., Neurocomputing 2018) as a richer superset of the
// MVTS features: ~139 features per metric including approximate/sample
// entropy, Welch power-spectral-density aggregates, FFT coefficients,
// autocorrelation structure, non-linearity statistics (c3, cid_ce, time
// reversal asymmetry), energy-ratio chunking, and index-mass quantiles
// (Sec. III-A explicitly calls out approximate entropy, power spectral
// density, and variation coefficients).
//
// The original toolkit computes 794 features per metric, most of which are
// parameter sweeps of the same characterization methods; this
// implementation keeps every method family with a representative parameter
// set, preserving the "rich vs. simple feature space" comparison the paper
// makes between TSFRESH and MVTS. Quadratic-time entropy estimators run on
// a stride-decimated view capped at 128 points so paper-scale series stay
// tractable.
package tsfresh

import (
	"fmt"
	"math"

	"albadross/internal/features/mvts"
	"albadross/internal/fft"
	"albadross/internal/stats"
)

// entropyCap bounds the series length used for the O(n^2) entropy
// estimators; longer series are stride-decimated to at most this length.
const entropyCap = 128

// welchSegment is the Welch PSD segment length.
const welchSegment = 64

// Extractor computes the TSFRESH-style feature set per metric. The zero
// value is ready to use; it embeds the 48 MVTS features and appends the
// advanced families.
type Extractor struct{}

// Name returns "tsfresh".
func (Extractor) Name() string { return "tsfresh" }

var featureNames = buildNames()

func buildNames() []string {
	names := append([]string{}, mvts.Extractor{}.FeatureNames()...)
	add := func(format string, args ...interface{}) {
		names = append(names, fmt.Sprintf(format, args...))
	}
	for lag := 1; lag <= 10; lag++ {
		add("autocorr_lag%d", lag)
	}
	for lag := 1; lag <= 5; lag++ {
		add("pacf_lag%d", lag)
	}
	for lag := 1; lag <= 3; lag++ {
		add("c3_lag%d", lag)
	}
	add("cid_ce_raw")
	add("cid_ce_norm")
	for lag := 1; lag <= 3; lag++ {
		add("time_reversal_asym_lag%d", lag)
	}
	add("binned_entropy_5")
	add("binned_entropy_20")
	add("approximate_entropy")
	add("sample_entropy")
	add("spectral_centroid")
	add("spectral_variance")
	add("spectral_skew")
	add("spectral_kurtosis")
	add("psd_max")
	add("psd_argmax_freq")
	add("psd_total")
	for b := 0; b < 4; b++ {
		add("psd_band%d", b)
	}
	for k := 0; k < 8; k++ {
		add("fft_coeff_abs_%d", k)
	}
	for q := 1; q <= 9; q++ {
		add("quantile_q%d0", q)
	}
	for _, r := range []string{"05", "10", "15", "20", "25", "30"} {
		add("ratio_beyond_r%s_sigma", r)
	}
	add("crossings_q25")
	add("crossings_q75")
	add("num_peaks_1")
	add("num_peaks_5")
	add("num_peaks_10")
	add("pct_reoccurring")
	add("sum_reoccurring")
	add("has_duplicate_max")
	add("has_duplicate_min")
	add("strike_above_median")
	add("strike_below_median")
	for c := 0; c < 10; c++ {
		add("energy_ratio_chunk%d", c)
	}
	add("index_mass_q25")
	add("index_mass_q50")
	add("index_mass_q75")
	add("last_loc_max_ratio")
	add("last_loc_min_ratio")
	add("zero_fraction")
	add("variance_larger_than_std")
	add("large_std")
	add("symmetry_looking")
	return names
}

// FeatureNames returns the per-metric feature names in extraction order.
func (Extractor) FeatureNames() []string { return featureNames }

// decimate returns the series stride-subsampled to at most cap points.
func decimate(s []float64, maxLen int) []float64 {
	if len(s) <= maxLen {
		return s
	}
	stride := (len(s) + maxLen - 1) / maxLen
	out := make([]float64, 0, maxLen)
	for i := 0; i < len(s); i += stride {
		out = append(out, s[i])
	}
	return out
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Extract computes the feature vector of one series.
func (e Extractor) Extract(s []float64) []float64 {
	out := make([]float64, 0, len(featureNames))
	out = append(out, mvts.Extractor{}.Extract(s)...)

	for lag := 1; lag <= 10; lag++ {
		out = append(out, stats.Autocorrelation(s, lag))
	}
	for lag := 1; lag <= 5; lag++ {
		out = append(out, stats.PartialAutocorrelation(s, lag))
	}
	for lag := 1; lag <= 3; lag++ {
		out = append(out, stats.C3(s, lag))
	}
	out = append(out, stats.CidCE(s, false), stats.CidCE(s, true))
	for lag := 1; lag <= 3; lag++ {
		out = append(out, stats.TimeReversalAsymmetry(s, lag))
	}
	out = append(out, stats.BinnedEntropy(s, 5), stats.BinnedEntropy(s, 20))

	dec := decimate(s, entropyCap)
	sd := stats.Std(dec)
	out = append(out, stats.ApproximateEntropy(dec, 2, 0.2*sd))
	se := stats.SampleEntropy(dec, 2, 0.2*sd)
	if math.IsInf(se, 0) {
		se = math.NaN() // undefined (no m+1 matches); treated like other NaNs
	}
	out = append(out, se)

	// Spectral features via Welch's method (1 Hz sampling).
	freqs, psd := fft.Welch(s, 1, welchSegment)
	if len(psd) == 0 {
		for i := 0; i < 11; i++ {
			out = append(out, math.NaN())
		}
	} else {
		c, v, sk, ku := fft.SpectralMoments(freqs, psd)
		out = append(out, c, v, sk, ku)
		arg := stats.ArgMax(psd)
		out = append(out, stats.Max(psd), freqs[arg], stats.Sum(psd))
		// Power split into four equal frequency bands.
		quarter := (len(psd) + 3) / 4
		for b := 0; b < 4; b++ {
			lo := b * quarter
			hi := lo + quarter
			if hi > len(psd) {
				hi = len(psd)
			}
			if lo >= hi {
				out = append(out, 0)
				continue
			}
			out = append(out, stats.Sum(psd[lo:hi]))
		}
	}

	// Leading FFT coefficient magnitudes of the mean-removed series.
	if len(s) >= 2 {
		m := stats.Mean(s)
		centered := make([]float64, len(s))
		for i, v := range s {
			centered[i] = v - m
		}
		spec := fft.FFTReal(centered)
		for k := 0; k < 8; k++ {
			if k < len(spec) {
				re, im := real(spec[k]), imag(spec[k])
				out = append(out, math.Sqrt(re*re+im*im))
			} else {
				out = append(out, math.NaN())
			}
		}
	} else {
		for k := 0; k < 8; k++ {
			out = append(out, math.NaN())
		}
	}

	qs := stats.QuantilesSorted(s, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
	out = append(out, qs...)
	for _, r := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0} {
		out = append(out, stats.RatioBeyondRSigma(s, r))
	}
	q25 := stats.Quantile(s, 0.25)
	q75 := stats.Quantile(s, 0.75)
	out = append(out,
		float64(stats.CrossingCount(s, q25)),
		float64(stats.CrossingCount(s, q75)),
		float64(stats.NumberPeaks(s, 1)),
		float64(stats.NumberPeaks(s, 5)),
		float64(stats.NumberPeaks(s, 10)),
		stats.PercentageReoccurring(s),
		stats.SumOfReoccurringValues(s),
		b2f(stats.HasDuplicateMax(s)),
		b2f(stats.HasDuplicateMin(s)),
	)
	med := stats.Median(s)
	out = append(out,
		float64(stats.LongestStrikeAbove(s, med)),
		float64(stats.LongestStrikeBelow(s, med)),
	)

	// Energy ratio by 10 chunks.
	total := stats.AbsEnergy(s)
	n := len(s)
	for c := 0; c < 10; c++ {
		if n == 0 || total == 0 {
			out = append(out, math.NaN())
			continue
		}
		lo := c * n / 10
		hi := (c + 1) * n / 10
		out = append(out, stats.AbsEnergy(s[lo:hi])/total)
	}

	// Index mass quantiles: relative index where the cumulative |x| mass
	// passes q.
	absMass := 0.0
	for _, v := range s {
		absMass += math.Abs(v)
	}
	for _, q := range []float64{0.25, 0.5, 0.75} {
		if n == 0 || absMass == 0 {
			out = append(out, math.NaN())
			continue
		}
		cum := 0.0
		idx := n - 1
		for i, v := range s {
			cum += math.Abs(v)
			if cum >= q*absMass {
				idx = i
				break
			}
		}
		out = append(out, float64(idx+1)/float64(n))
	}

	// Last locations of extrema.
	if n > 0 {
		mx, mn := stats.Max(s), stats.Min(s)
		lastMax, lastMin := 0, 0
		zeros := 0
		for i, v := range s {
			if v == mx { //albacheck:ignore floatsafe exact match against the series' own Max locates extremum positions
				lastMax = i
			}
			if v == mn { //albacheck:ignore floatsafe exact match against the series' own Min locates extremum positions
				lastMin = i
			}
			if v == 0 {
				zeros++
			}
		}
		out = append(out,
			float64(lastMax+1)/float64(n),
			float64(lastMin+1)/float64(n),
			float64(zeros)/float64(n),
		)
	} else {
		out = append(out, math.NaN(), math.NaN(), math.NaN())
	}

	variance := stats.Var(s)
	out = append(out,
		b2f(variance > math.Sqrt(variance)), // variance_larger_than_std
		b2f(stats.Std(s) > 0.25*stats.Range(s)),
	)
	// symmetry_looking: |mean - median| < 0.05 * range.
	out = append(out, b2f(math.Abs(stats.Mean(s)-med) < 0.05*stats.Range(s)))

	// Overflow guard: products of extreme magnitudes (c3's cubes, energy
	// sums) can overflow float64 even on finite input. The extractor's
	// contract is finite-or-NaN — an infinity is an undefined feature,
	// not a value.
	for i, v := range out {
		if math.IsInf(v, 0) {
			out[i] = math.NaN()
		}
	}
	return out
}
