package tsfresh

import (
	"math"
	"math/rand"
	"testing"
)

func TestFeatureCountConsistent(t *testing.T) {
	e := Extractor{}
	names := e.FeatureNames()
	if len(names) < 120 {
		t.Fatalf("tsfresh set has %d features, expected a rich set (>=120)", len(names))
	}
	for _, n := range []int{0, 1, 2, 5, 64, 200, 777} {
		s := make([]float64, n)
		for i := range s {
			s[i] = float64(i % 7)
		}
		v := e.Extract(s)
		if len(v) != len(names) {
			t.Fatalf("n=%d: extract returned %d features, declared %d", n, len(v), len(names))
		}
	}
}

func TestSupersetOfMVTS(t *testing.T) {
	e := Extractor{}
	names := e.FeatureNames()
	// The first 48 names are the MVTS set.
	if names[0] != "mean" || len(names) <= 48 {
		t.Fatal("tsfresh should embed the MVTS features first")
	}
}

func TestUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range (Extractor{}).FeatureNames() {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func idx(t *testing.T, name string) int {
	t.Helper()
	for i, n := range (Extractor{}).FeatureNames() {
		if n == name {
			return i
		}
	}
	t.Fatalf("no feature named %q", name)
	return -1
}

func TestSpectralPeakDetectsPeriodicity(t *testing.T) {
	e := Extractor{}
	n := 512
	periodic := make([]float64, n)
	for i := range periodic {
		periodic[i] = math.Sin(2 * math.Pi * float64(i) / 16) // 1/16 Hz
	}
	v := e.Extract(periodic)
	f0 := v[idx(t, "psd_argmax_freq")]
	if math.Abs(f0-1.0/16) > 0.02 {
		t.Fatalf("psd peak at %v, want ~%v", f0, 1.0/16)
	}
}

func TestEntropyOrdersRegularVsNoise(t *testing.T) {
	e := Extractor{}
	rng := rand.New(rand.NewSource(2))
	n := 300
	regular := make([]float64, n)
	noise := make([]float64, n)
	for i := range regular {
		regular[i] = math.Sin(float64(i) / 5)
		noise[i] = rng.NormFloat64()
	}
	ai := idx(t, "approximate_entropy")
	vr := e.Extract(regular)[ai]
	vn := e.Extract(noise)[ai]
	if !(vr < vn) {
		t.Fatalf("ApEn(regular)=%v should be < ApEn(noise)=%v", vr, vn)
	}
}

func TestAutocorrFeatures(t *testing.T) {
	e := Extractor{}
	// Strongly autocorrelated ramp.
	s := make([]float64, 200)
	for i := range s {
		s[i] = float64(i)
	}
	v := e.Extract(s)
	if ac := v[idx(t, "autocorr_lag1")]; ac < 0.9 {
		t.Fatalf("ramp lag-1 autocorr = %v, want ~1", ac)
	}
}

func TestEnergyRatioChunksSumToOne(t *testing.T) {
	e := Extractor{}
	rng := rand.New(rand.NewSource(3))
	s := make([]float64, 173)
	for i := range s {
		s[i] = rng.NormFloat64() + 1
	}
	v := e.Extract(s)
	sum := 0.0
	for c := 0; c < 10; c++ {
		sum += v[idx(t, "energy_ratio_chunk0")+c]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("energy ratios sum to %v, want 1", sum)
	}
}

func TestIndexMassMonotone(t *testing.T) {
	e := Extractor{}
	rng := rand.New(rand.NewSource(4))
	s := make([]float64, 100)
	for i := range s {
		s[i] = math.Abs(rng.NormFloat64()) + 0.1
	}
	v := e.Extract(s)
	q25 := v[idx(t, "index_mass_q25")]
	q50 := v[idx(t, "index_mass_q50")]
	q75 := v[idx(t, "index_mass_q75")]
	if !(q25 <= q50 && q50 <= q75) {
		t.Fatalf("index mass quantiles not monotone: %v %v %v", q25, q50, q75)
	}
	if q25 <= 0 || q75 > 1 {
		t.Fatalf("index mass out of (0,1]: %v %v", q25, q75)
	}
}

func TestDecimate(t *testing.T) {
	s := make([]float64, 1000)
	for i := range s {
		s[i] = float64(i)
	}
	d := decimate(s, 128)
	if len(d) > 128 {
		t.Fatalf("decimated to %d, want <= 128", len(d))
	}
	if d[0] != 0 {
		t.Fatal("decimation should keep first element")
	}
	short := []float64{1, 2, 3}
	if len(decimate(short, 128)) != 3 {
		t.Fatal("short series should pass through")
	}
}

func TestBooleanFeaturesAreBinary(t *testing.T) {
	e := Extractor{}
	rng := rand.New(rand.NewSource(5))
	s := make([]float64, 100)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	v := e.Extract(s)
	for _, name := range []string{"has_duplicate_max", "has_duplicate_min", "variance_larger_than_std", "large_std", "symmetry_looking"} {
		got := v[idx(t, name)]
		if got != 0 && got != 1 {
			t.Fatalf("%s = %v, want 0 or 1", name, got)
		}
	}
}

func BenchmarkExtract600(b *testing.B) {
	e := Extractor{}
	rng := rand.New(rand.NewSource(6))
	s := make([]float64, 600)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Extract(s)
	}
}
