package dataset

import (
	"math/rand"
	"testing"

	"albadross/internal/telemetry"
)

var classes = []string{"healthy", "cpuoccupy", "memleak"}

// synth builds a dataset of n samples over apps with roughly anomFrac
// anomalous samples split between the two anomaly classes.
func synth(t *testing.T, n int, apps []string, anomFrac float64, seed int64) *Dataset {
	t.Helper()
	d := New(classes)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		label := "healthy"
		if rng.Float64() < anomFrac {
			if rng.Float64() < 0.5 {
				label = "cpuoccupy"
			} else {
				label = "memleak"
			}
		}
		meta := telemetry.RunMeta{
			App:     apps[rng.Intn(len(apps))],
			Input:   rng.Intn(3),
			Anomaly: label,
		}
		x := []float64{rng.Float64(), rng.Float64(), float64(i)}
		if err := d.Add(x, label, meta); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestAddValidation(t *testing.T) {
	d := New(classes)
	if err := d.Add([]float64{1}, "healthy", telemetry.RunMeta{}); err != nil {
		t.Fatal(err)
	}
	if err := d.Add([]float64{1, 2}, "healthy", telemetry.RunMeta{}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
	if err := d.Add([]float64{1}, "nope", telemetry.RunMeta{}); err == nil {
		t.Fatal("unknown class should error")
	}
	if d.Len() != 1 || d.Dim() != 1 {
		t.Fatalf("len=%d dim=%d", d.Len(), d.Dim())
	}
}

func TestClassIndexAfterManualConstruction(t *testing.T) {
	// A Dataset built by struct literal (e.g. from gob decode) must still
	// resolve class indices.
	d := &Dataset{Classes: []string{"a", "b"}}
	if i, ok := d.ClassIndex("b"); !ok || i != 1 {
		t.Fatalf("ClassIndex = %d, %v", i, ok)
	}
}

func TestSubsetAndClone(t *testing.T) {
	d := synth(t, 20, []string{"BT"}, 0.5, 1)
	sub := d.Subset([]int{0, 5, 7})
	if sub.Len() != 3 {
		t.Fatalf("subset len = %d", sub.Len())
	}
	if sub.Y[1] != d.Y[5] || sub.Meta[2].App != d.Meta[7].App {
		t.Fatal("subset misaligned")
	}
	cl := d.Clone()
	cl.X[0][0] = 999
	if d.X[0][0] == 999 {
		t.Fatal("clone must not alias rows")
	}
}

func TestStratifiedSplitPreservesRatios(t *testing.T) {
	d := synth(t, 600, []string{"BT", "CG"}, 0.3, 2)
	train, test, err := StratifiedSplit(d.Y, len(classes), 0.25, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(test) != d.Len() {
		t.Fatal("split loses samples")
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, train...), test...) {
		if seen[i] {
			t.Fatalf("index %d appears twice", i)
		}
		seen[i] = true
	}
	// Per-class test fraction within tolerance.
	total := d.ClassCounts()
	testCounts := make([]int, len(classes))
	for _, i := range test {
		testCounts[d.Y[i]]++
	}
	for c := range classes {
		if total[c] == 0 {
			continue
		}
		frac := float64(testCounts[c]) / float64(total[c])
		if frac < 0.15 || frac > 0.35 {
			t.Fatalf("class %d test fraction = %v, want ~0.25", c, frac)
		}
	}
}

func TestStratifiedSplitValidation(t *testing.T) {
	if _, _, err := StratifiedSplit([]int{0, 1}, 2, 0, 1); err == nil {
		t.Fatal("zero fraction should error")
	}
	if _, _, err := StratifiedSplit(nil, 2, 0.5, 1); err == nil {
		t.Fatal("empty labels should error")
	}
	// Tiny classes keep at least one sample in train.
	train, test, err := StratifiedSplit([]int{0, 1, 1}, 2, 0.9, 1)
	if err != nil {
		t.Fatal(err)
	}
	hasTrain := map[int]bool{}
	for _, i := range train {
		hasTrain[[]int{0, 1, 1}[i]] = true
	}
	if !hasTrain[0] || !hasTrain[1] {
		t.Fatalf("every class should keep a train sample: train=%v test=%v", train, test)
	}
}

func TestStratifiedKFold(t *testing.T) {
	d := synth(t, 300, []string{"BT"}, 0.4, 5)
	folds, err := StratifiedKFold(d.Y, len(classes), 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]bool{}
	total := 0
	for _, f := range folds {
		total += len(f)
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if total != d.Len() {
		t.Fatalf("folds cover %d of %d", total, d.Len())
	}
	if _, err := StratifiedKFold(d.Y, len(classes), 1, 7); err == nil {
		t.Fatal("k=1 should error")
	}
}

func TestMakeALSplit(t *testing.T) {
	apps := []string{"BT", "CG", "FT"}
	d := synth(t, 2000, apps, 0.45, 11)
	split, err := MakeALSplit(d, ALSplitConfig{
		TestFraction: 0.3, AnomalyRatio: 0.10, HealthyClass: 0, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Initial: one sample per (app, anomaly-class) pair present, no healthy.
	pairSeen := map[string]int{}
	for _, i := range split.Initial {
		if d.Y[i] == 0 {
			t.Fatal("initial set must not contain healthy samples")
		}
		key := d.Meta[i].App + "#" + d.Classes[d.Y[i]]
		pairSeen[key]++
	}
	if len(pairSeen) != len(split.Initial) {
		t.Fatal("initial set has duplicate (app, anomaly) pairs")
	}
	if len(split.Initial) != len(apps)*2 { // 2 anomaly classes
		t.Fatalf("initial = %d, want %d", len(split.Initial), len(apps)*2)
	}
	// Disjointness.
	seen := map[int]string{}
	mark := func(idx []int, tag string) {
		for _, i := range idx {
			if prev, ok := seen[i]; ok {
				t.Fatalf("index %d in both %s and %s", i, prev, tag)
			}
			seen[i] = tag
		}
	}
	mark(split.Initial, "initial")
	mark(split.Pool, "pool")
	mark(split.Test, "test")
	// Anomaly ratio of initial+pool at most ~10%.
	anom, tot := 0, 0
	count := func(idx []int) {
		for _, i := range idx {
			tot++
			if d.Y[i] != 0 {
				anom++
			}
		}
	}
	count(split.Initial)
	count(split.Pool)
	ratio := float64(anom) / float64(tot)
	if ratio > 0.105 {
		t.Fatalf("anomaly ratio = %v, want <= 0.10", ratio)
	}
	if ratio < 0.05 {
		t.Fatalf("anomaly ratio = %v suspiciously low", ratio)
	}
}

func TestMakeALSplitValidation(t *testing.T) {
	d := synth(t, 50, []string{"BT"}, 0.4, 1)
	if _, err := MakeALSplit(New(classes), ALSplitConfig{TestFraction: 0.3, AnomalyRatio: 0.1}); err == nil {
		t.Fatal("empty dataset should error")
	}
	if _, err := MakeALSplit(d, ALSplitConfig{TestFraction: 0.3, AnomalyRatio: 0}); err == nil {
		t.Fatal("bad ratio should error")
	}
	if _, err := MakeALSplit(d, ALSplitConfig{TestFraction: 0.3, AnomalyRatio: 0.1, HealthyClass: 9}); err == nil {
		t.Fatal("bad healthy class should error")
	}
}

func TestMakeALSplitDeterministic(t *testing.T) {
	d := synth(t, 500, []string{"BT", "CG"}, 0.4, 21)
	cfg := ALSplitConfig{TestFraction: 0.3, AnomalyRatio: 0.1, Seed: 5}
	a, err := MakeALSplit(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MakeALSplit(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eq := func(x, y []int) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !eq(a.Initial, b.Initial) || !eq(a.Pool, b.Pool) || !eq(a.Test, b.Test) {
		t.Fatal("AL split not deterministic")
	}
}

func TestFilterIndicesAndApps(t *testing.T) {
	d := synth(t, 100, []string{"BT", "CG", "FT"}, 0.3, 31)
	bt := d.FilterIndices(func(m telemetry.RunMeta) bool { return m.App == "BT" })
	for _, i := range bt {
		if d.Meta[i].App != "BT" {
			t.Fatal("filter returned wrong sample")
		}
	}
	apps := d.Apps()
	if len(apps) != 3 || apps[0] != "BT" {
		t.Fatalf("apps = %v", apps)
	}
}
