// Package dataset provides the labeled-sample container of the pipeline
// and the dataset-splitting machinery of Sec. IV-E-2 / Fig. 2 of the
// paper: stratified train/test splits, stratified k-fold cross-validation,
// and the active-learning split that carves the training data into an
// initial labeled set (one sample per application-anomaly pair) and an
// unlabeled pool with a production-like 10% anomaly ratio.
package dataset

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"albadross/internal/telemetry"
)

// Dataset is a feature matrix with class labels and per-sample provenance.
type Dataset struct {
	// X is the feature matrix, one row per sample.
	X [][]float64
	// Y holds class indices into Classes.
	Y []int
	// Classes maps class index to label string; Classes[0] is healthy by
	// convention of the callers.
	Classes []string
	// Meta records each sample's provenance (application, input deck,
	// node, anomaly, ...).
	Meta []telemetry.RunMeta
	// FeatureNames names the columns of X (optional, may be nil).
	FeatureNames []string

	classIdx map[string]int
}

// New creates an empty dataset over the given class label set.
func New(classes []string) *Dataset {
	d := &Dataset{Classes: append([]string{}, classes...), classIdx: map[string]int{}}
	for i, c := range d.Classes {
		d.classIdx[c] = i
	}
	return d
}

// ClassIndex returns the index of a class label.
func (d *Dataset) ClassIndex(label string) (int, bool) {
	if d.classIdx == nil {
		d.rebuildIndex()
	}
	i, ok := d.classIdx[label]
	return i, ok
}

func (d *Dataset) rebuildIndex() {
	d.classIdx = map[string]int{}
	for i, c := range d.Classes {
		d.classIdx[c] = i
	}
}

// Add appends one sample. The label must be one of the dataset's classes.
func (d *Dataset) Add(x []float64, label string, meta telemetry.RunMeta) error {
	ci, ok := d.ClassIndex(label)
	if !ok {
		return fmt.Errorf("dataset: unknown class %q", label)
	}
	if len(d.X) > 0 && len(x) != len(d.X[0]) {
		return fmt.Errorf("dataset: sample has %d features, dataset has %d", len(x), len(d.X[0]))
	}
	d.X = append(d.X, x)
	d.Y = append(d.Y, ci)
	d.Meta = append(d.Meta, meta)
	return nil
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the number of features (0 when empty).
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// ClassCounts returns the number of samples per class index.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, len(d.Classes))
	for _, y := range d.Y {
		counts[y]++
	}
	return counts
}

// Subset returns a new dataset containing the given sample indices (rows
// are shared, not copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := New(d.Classes)
	out.FeatureNames = d.FeatureNames
	for _, i := range idx {
		out.X = append(out.X, d.X[i])
		out.Y = append(out.Y, d.Y[i])
		out.Meta = append(out.Meta, d.Meta[i])
	}
	return out
}

// Clone returns a deep copy of the dataset (rows copied).
func (d *Dataset) Clone() *Dataset {
	out := New(d.Classes)
	out.FeatureNames = append([]string{}, d.FeatureNames...)
	out.X = make([][]float64, len(d.X))
	for i, row := range d.X {
		out.X[i] = append([]float64{}, row...)
	}
	out.Y = append([]int{}, d.Y...)
	out.Meta = append([]telemetry.RunMeta{}, d.Meta...)
	return out
}

// byClass groups sample indices per class, each group in ascending order.
func byClass(y []int, nClasses int) [][]int {
	groups := make([][]int, nClasses)
	for i, c := range y {
		groups[c] = append(groups[c], i)
	}
	return groups
}

// StratifiedSplit partitions sample indices into train and test sets with
// per-class proportions preserved (each class contributes ~testFrac of its
// samples to test, at least one sample staying in train when possible).
func StratifiedSplit(y []int, nClasses int, testFrac float64, seed int64) (train, test []int, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("dataset: test fraction %v outside (0,1)", testFrac)
	}
	if len(y) == 0 {
		return nil, nil, errors.New("dataset: empty label slice")
	}
	rng := rand.New(rand.NewSource(seed))
	for _, group := range byClass(y, nClasses) {
		if len(group) == 0 {
			continue
		}
		perm := rng.Perm(len(group))
		nTest := int(float64(len(group))*testFrac + 0.5)
		if nTest >= len(group) {
			nTest = len(group) - 1
		}
		for i, p := range perm {
			if i < nTest {
				test = append(test, group[p])
			} else {
				train = append(train, group[p])
			}
		}
	}
	sort.Ints(train)
	sort.Ints(test)
	return train, test, nil
}

// StratifiedKFold returns k folds of sample indices with per-class
// proportions approximately preserved. Folds are disjoint and cover all
// samples.
func StratifiedKFold(y []int, nClasses, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("dataset: k must be >= 2, got %d", k)
	}
	if len(y) < k {
		return nil, fmt.Errorf("dataset: %d samples for %d folds", len(y), k)
	}
	rng := rand.New(rand.NewSource(seed))
	folds := make([][]int, k)
	for _, group := range byClass(y, nClasses) {
		perm := rng.Perm(len(group))
		for i, p := range perm {
			f := i % k
			folds[f] = append(folds[f], group[p])
		}
	}
	for f := range folds {
		sort.Ints(folds[f])
	}
	return folds, nil
}

// ALSplit is the Fig. 2 dataset split: a small initial labeled set, a
// large unlabeled pool the query strategies draw from, and a withheld test
// set.
type ALSplit struct {
	// Initial holds the initially labeled samples: one per
	// (application, anomaly) pair, per Sec. III-C.
	Initial []int
	// Pool holds the unlabeled samples available for querying.
	Pool []int
	// Test holds the withheld evaluation samples.
	Test []int
}

// ALSplitConfig configures MakeALSplit.
type ALSplitConfig struct {
	// TestFraction of each class goes to the test set.
	TestFraction float64
	// AnomalyRatio is the target anomalous fraction of the active-learning
	// training dataset (initial + pool); the paper caps it at 10%.
	AnomalyRatio float64
	// HealthyClass is the class index of healthy samples (usually 0).
	HealthyClass int
	// InitialFilter, when non-nil, restricts which samples may enter the
	// initial labeled set (the robustness experiments restrict it to the
	// "seen" applications or input decks while the unlabeled pool keeps
	// everything — labels, not telemetry, are what production systems
	// lack). Filtered-out samples remain pool candidates.
	InitialFilter func(telemetry.RunMeta) bool
	// Seed drives all randomized choices.
	Seed int64
}

// MakeALSplit builds the paper's active-learning split. The initial
// labeled set receives one randomly chosen training sample for every
// (application, anomaly-class) combination present in the data — and no
// healthy samples, matching the paper's initial sample counts (e.g.
// 11 apps x 5 anomalies = 55 on Volta). The remaining training anomalies
// are subsampled so the pool+initial anomaly ratio is at most
// AnomalyRatio.
func MakeALSplit(d *Dataset, cfg ALSplitConfig) (*ALSplit, error) {
	if d.Len() == 0 {
		return nil, errors.New("dataset: empty dataset")
	}
	train, test, err := StratifiedSplit(d.Y, len(d.Classes), cfg.TestFraction, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return MakeALSplitFrom(d, train, test, cfg)
}

// MakeALSplitFrom builds the active-learning split from caller-provided
// train/test index sets — the robustness experiments (Sec. V-B) use this
// to hold whole applications or input decks out of the training side.
// The initial labeled set and the ratio-capped pool are carved out of
// train; test passes through unchanged.
func MakeALSplitFrom(d *Dataset, train, test []int, cfg ALSplitConfig) (*ALSplit, error) {
	if d.Len() == 0 {
		return nil, errors.New("dataset: empty dataset")
	}
	if len(train) == 0 {
		return nil, errors.New("dataset: empty training index set")
	}
	if cfg.AnomalyRatio <= 0 || cfg.AnomalyRatio >= 1 {
		return nil, fmt.Errorf("dataset: anomaly ratio %v outside (0,1)", cfg.AnomalyRatio)
	}
	if cfg.HealthyClass < 0 || cfg.HealthyClass >= len(d.Classes) {
		return nil, fmt.Errorf("dataset: healthy class %d out of range", cfg.HealthyClass)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	// Group anomalous training samples by (app, class).
	type pair struct {
		app   string
		class int
	}
	groups := map[pair][]int{}
	var healthyTrain, anomalyTrain []int
	for _, i := range train {
		if d.Y[i] == cfg.HealthyClass {
			healthyTrain = append(healthyTrain, i)
			continue
		}
		anomalyTrain = append(anomalyTrain, i)
		if cfg.InitialFilter != nil && !cfg.InitialFilter(d.Meta[i]) {
			continue
		}
		p := pair{d.Meta[i].App, d.Y[i]}
		groups[p] = append(groups[p], i)
	}
	// Deterministic iteration order over pairs.
	pairs := make([]pair, 0, len(groups))
	for p := range groups {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].app != pairs[b].app {
			return pairs[a].app < pairs[b].app
		}
		return pairs[a].class < pairs[b].class
	})
	initial := make([]int, 0, len(pairs))
	inInitial := map[int]bool{}
	for _, p := range pairs {
		g := groups[p]
		pick := g[rng.Intn(len(g))]
		initial = append(initial, pick)
		inInitial[pick] = true
	}

	// Remaining anomalies, subsampled to the target ratio.
	rest := make([]int, 0, len(anomalyTrain))
	for _, i := range anomalyTrain {
		if !inInitial[i] {
			rest = append(rest, i)
		}
	}
	// Target anomaly count A so that A / (A + H) <= ratio, counting the
	// initial anomalies toward A.
	h := float64(len(healthyTrain))
	maxAnom := int(cfg.AnomalyRatio / (1 - cfg.AnomalyRatio) * h)
	budget := maxAnom - len(initial)
	if budget < 0 {
		budget = 0
	}
	rng.Shuffle(len(rest), func(a, b int) { rest[a], rest[b] = rest[b], rest[a] })
	if budget < len(rest) {
		rest = rest[:budget]
	}
	pool := append(append([]int{}, healthyTrain...), rest...)
	sort.Ints(pool)
	sort.Ints(initial)
	return &ALSplit{Initial: initial, Pool: pool, Test: test}, nil
}

// FilterIndices returns the dataset indices whose metadata satisfies keep.
func (d *Dataset) FilterIndices(keep func(telemetry.RunMeta) bool) []int {
	var out []int
	for i := range d.Meta {
		if keep(d.Meta[i]) {
			out = append(out, i)
		}
	}
	return out
}

// Apps returns the sorted set of distinct application names present.
func (d *Dataset) Apps() []string {
	seen := map[string]bool{}
	for i := range d.Meta {
		seen[d.Meta[i].App] = true
	}
	out := make([]string, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
