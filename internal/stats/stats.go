// Package stats provides the descriptive-statistics substrate used by the
// feature-extraction toolkits and the evaluation machinery: moments,
// quantiles, histograms, entropy estimators, autocorrelation, and simple
// trend fits on float64 slices.
//
// All functions treat their input as an immutable sample; none of them
// mutate the slice they are given. Functions that need a sorted copy make
// one internally. Empty inputs return NaN (or zero where a count is the
// natural answer) rather than panicking, because upstream telemetry can
// legitimately produce empty windows.
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs; 0 for an empty slice.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Var returns the population variance of xs (divisor n), or NaN for an
// empty slice. The population form matches what tsfresh and the MVTS
// toolkit compute.
func Var(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVar returns the unbiased sample variance (divisor n-1), or NaN if
// fewer than two observations are available.
func SampleVar(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	return math.Sqrt(Var(xs)) //albacheck:ignore floatsafe Var is a sum of squares over a positive count (or NaN for short input), never negative
}

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Range returns Max(xs) - Min(xs).
func Range(xs []float64) float64 { return Max(xs) - Min(xs) }

// AbsEnergy returns the sum of squared values, tsfresh's "abs_energy".
func AbsEnergy(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x * x
	}
	return s
}

// MeanAbs returns the mean of absolute values.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += math.Abs(x)
	}
	return s / float64(len(xs))
}

// RMS returns the root mean square of xs.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return math.Sqrt(AbsEnergy(xs) / float64(len(xs)))
}

// Skewness returns the adjusted Fisher-Pearson skewness (the pandas/tsfresh
// G1 estimator), or NaN when it is undefined (n < 3 or zero variance).
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return math.NaN()
	}
	m := Mean(xs)
	m2, m3 := 0.0, 0.0
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return math.NaN()
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// Kurtosis returns the adjusted excess kurtosis (the pandas/tsfresh G2
// estimator), or NaN when undefined (n < 4 or zero variance).
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return math.NaN()
	}
	m := Mean(xs)
	m2, m4 := 0.0, 0.0
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return math.NaN()
	}
	g2 := m4/(m2*m2) - 3
	return ((n - 1) / ((n - 2) * (n - 3))) * ((n+1)*g2 + 6)
}

// sorted returns an ascending copy of xs.
func sorted(xs []float64) []float64 {
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return cp
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (numpy's default), or NaN for an
// empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	cp := sorted(xs)
	return quantileSorted(cp, q)
}

// QuantilesSorted evaluates multiple quantiles with a single sort. The qs
// need not be ordered. The result has the same length as qs.
func QuantilesSorted(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	cp := sorted(xs)
	for i, q := range qs {
		out[i] = quantileSorted(cp, q)
	}
	return out
}

func quantileSorted(cp []float64, q float64) float64 {
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// IQR returns the interquartile range Q3 - Q1.
func IQR(xs []float64) float64 {
	qs := QuantilesSorted(xs, 0.25, 0.75)
	return qs[1] - qs[0]
}

// MedianAbsDeviation returns median(|x - median(x)|).
func MedianAbsDeviation(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	med := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return Median(dev)
}

// VariationCoefficient returns std/mean (population std), or NaN when the
// mean is zero.
func VariationCoefficient(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return math.NaN()
	}
	return Std(xs) / m
}

// CountAbove returns the number of elements strictly greater than t.
func CountAbove(xs []float64, t float64) int {
	n := 0
	for _, x := range xs {
		if x > t {
			n++
		}
	}
	return n
}

// CountBelow returns the number of elements strictly less than t.
func CountBelow(xs []float64, t float64) int {
	n := 0
	for _, x := range xs {
		if x < t {
			n++
		}
	}
	return n
}

// CrossingCount returns the number of consecutive pairs that straddle the
// threshold t (sign changes of x - t), tsfresh's number_crossing_m.
func CrossingCount(xs []float64, t float64) int {
	n := 0
	for i := 1; i < len(xs); i++ {
		a, b := xs[i-1]-t, xs[i]-t
		if (a < 0 && b >= 0) || (a >= 0 && b < 0) {
			n++
		}
	}
	return n
}

// LongestStrikeAbove returns the length of the longest run of consecutive
// values strictly above the threshold.
func LongestStrikeAbove(xs []float64, t float64) int {
	best, cur := 0, 0
	for _, x := range xs {
		if x > t {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return best
}

// LongestStrikeBelow returns the length of the longest run of consecutive
// values strictly below the threshold.
func LongestStrikeBelow(xs []float64, t float64) int {
	best, cur := 0, 0
	for _, x := range xs {
		if x < t {
			cur++
			if cur > best {
				best = cur
			}
		} else {
			cur = 0
		}
	}
	return best
}

// LongestMonotonicIncrease returns the length (in samples) of the longest
// non-decreasing run, one of the MVTS "long-run trend" features.
func LongestMonotonicIncrease(xs []float64) int {
	if len(xs) == 0 {
		return 0
	}
	best, cur := 1, 1
	for i := 1; i < len(xs); i++ {
		if xs[i] >= xs[i-1] {
			cur++
		} else {
			cur = 1
		}
		if cur > best {
			best = cur
		}
	}
	return best
}

// LongestMonotonicDecrease returns the length of the longest non-increasing
// run.
func LongestMonotonicDecrease(xs []float64) int {
	if len(xs) == 0 {
		return 0
	}
	best, cur := 1, 1
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			cur++
		} else {
			cur = 1
		}
		if cur > best {
			best = cur
		}
	}
	return best
}

// MeanChange returns the mean of first differences ((x_n - x_0)/(n-1)).
func MeanChange(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	return (xs[len(xs)-1] - xs[0]) / float64(len(xs)-1)
}

// MeanAbsChange returns the mean absolute first difference.
func MeanAbsChange(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	s := 0.0
	for i := 1; i < len(xs); i++ {
		s += math.Abs(xs[i] - xs[i-1])
	}
	return s / float64(len(xs)-1)
}

// MeanSecondDerivativeCentral returns tsfresh's
// mean_second_derivative_central: mean of (x[i+1] - 2x[i] + x[i-1]) / 2.
func MeanSecondDerivativeCentral(xs []float64) float64 {
	if len(xs) < 3 {
		return math.NaN()
	}
	s := 0.0
	for i := 1; i < len(xs)-1; i++ {
		s += (xs[i+1] - 2*xs[i] + xs[i-1]) / 2
	}
	return s / float64(len(xs)-2)
}

// Autocorrelation returns the lag-k autocorrelation using the standard
// biased estimator, or NaN when the variance is zero or the lag is out of
// range.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n {
		return math.NaN()
	}
	m := Mean(xs)
	v := Var(xs)
	if v == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := 0; i < n-lag; i++ {
		s += (xs[i] - m) * (xs[i+lag] - m)
	}
	return s / (float64(n) * v)
}

// PartialAutocorrelation estimates the lag-k partial autocorrelation via
// Durbin-Levinson recursion on the sample autocorrelations. Lag 0 is 1 by
// convention.
func PartialAutocorrelation(xs []float64, lag int) float64 {
	if lag == 0 {
		return 1
	}
	if lag < 0 || lag >= len(xs) {
		return math.NaN()
	}
	rho := make([]float64, lag+1)
	for k := 0; k <= lag; k++ {
		rho[k] = Autocorrelation(xs, k)
		if math.IsNaN(rho[k]) {
			return math.NaN()
		}
	}
	// Durbin-Levinson.
	phi := make([][]float64, lag+1)
	for i := range phi {
		phi[i] = make([]float64, lag+1)
	}
	phi[1][1] = rho[1]
	for k := 2; k <= lag; k++ {
		num := rho[k]
		den := 1.0
		for j := 1; j < k; j++ {
			num -= phi[k-1][j] * rho[k-j]
			den -= phi[k-1][j] * rho[j]
		}
		if den == 0 {
			return math.NaN()
		}
		phi[k][k] = num / den
		for j := 1; j < k; j++ {
			phi[k][j] = phi[k-1][j] - phi[k][k]*phi[k-1][k-j]
		}
	}
	return phi[lag][lag]
}

// C3 returns tsfresh's c3 non-linearity statistic:
// mean of x[i] * x[i+lag] * x[i+2*lag].
func C3(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || n <= 2*lag {
		return math.NaN()
	}
	s := 0.0
	for i := 0; i < n-2*lag; i++ {
		s += xs[i] * xs[i+lag] * xs[i+2*lag]
	}
	return s / float64(n-2*lag)
}

// CidCE returns tsfresh's cid_ce complexity estimate:
// sqrt(sum of squared first differences), optionally on the z-normalized
// series.
func CidCE(xs []float64, normalize bool) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	v := xs
	if normalize {
		sd := Std(xs)
		if sd == 0 {
			return 0
		}
		m := Mean(xs)
		v = make([]float64, len(xs))
		for i, x := range xs {
			v[i] = (x - m) / sd
		}
	}
	s := 0.0
	for i := 1; i < len(v); i++ {
		d := v[i] - v[i-1]
		s += d * d
	}
	return math.Sqrt(s) //albacheck:ignore floatsafe s is a sum of squares, never negative
}

// NumberPeaks returns the number of peaks of at least the given support: a
// value that is strictly greater than its `support` neighbours on both
// sides (tsfresh's number_peaks).
func NumberPeaks(xs []float64, support int) int {
	if support <= 0 {
		return 0
	}
	count := 0
	for i := support; i < len(xs)-support; i++ {
		peak := true
		for d := 1; d <= support && peak; d++ {
			if xs[i] <= xs[i-d] || xs[i] <= xs[i+d] {
				peak = false
			}
		}
		if peak {
			count++
		}
	}
	return count
}

// ArgMax returns the index of the first maximum value; -1 for empty input.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the first minimum value; -1 for empty input.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// LinearTrend fits y = slope*i + intercept over the sample index by
// ordinary least squares and also reports the correlation coefficient r.
// For a series shorter than 2, all results are NaN.
func LinearTrend(xs []float64) (slope, intercept, r float64) {
	n := float64(len(xs))
	if n < 2 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	// Index statistics are closed-form.
	sumI := (n - 1) * n / 2
	sumII := (n - 1) * n * (2*n - 1) / 6
	meanI := sumI / n
	sumX := Sum(xs)
	meanX := sumX / n
	var sumIX float64
	for i, x := range xs {
		sumIX += float64(i) * x
	}
	den := sumII - n*meanI*meanI
	if den == 0 {
		return math.NaN(), math.NaN(), math.NaN()
	}
	slope = (sumIX - n*meanI*meanX) / den
	intercept = meanX - slope*meanI
	varX := Var(xs)
	if varX == 0 {
		return slope, intercept, math.NaN()
	}
	covIX := (sumIX/n - meanI*meanX)
	varI := sumII/n - meanI*meanI
	r = covIX / math.Sqrt(varI*varX)
	return slope, intercept, r
}

// BinnedEntropy buckets the series into `bins` equal-width bins between its
// min and max and returns the Shannon entropy (nats) of the bin occupancy
// distribution (tsfresh's binned_entropy). A constant series has entropy 0.
func BinnedEntropy(xs []float64, bins int) float64 {
	if len(xs) == 0 || bins <= 0 {
		return math.NaN()
	}
	lo, hi := Min(xs), Max(xs)
	counts := make([]float64, bins)
	w := (hi - lo) / float64(bins)
	if w <= 0 {
		return 0 // constant series, or a range so narrow the bin width underflows
	}
	for _, x := range xs {
		b := int((x - lo) / w)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	h := 0.0
	for _, c := range counts {
		p := c / float64(len(xs))
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// ApproximateEntropy computes ApEn(m, r) of the series (Pincus), the
// regularity statistic tsfresh exposes as approximate_entropy. r is the
// tolerance expressed in absolute units (callers usually pass a multiple of
// the series' standard deviation). Returns 0 for series shorter than m+1.
func ApproximateEntropy(xs []float64, m int, r float64) float64 {
	n := len(xs)
	if n <= m+1 || m <= 0 || r <= 0 {
		return 0
	}
	phi := func(m int) float64 {
		count := n - m + 1
		sum := 0.0
		for i := 0; i < count; i++ {
			matches := 0
			for j := 0; j < count; j++ {
				ok := true
				for k := 0; k < m; k++ {
					if math.Abs(xs[i+k]-xs[j+k]) > r {
						ok = false
						break
					}
				}
				if ok {
					matches++
				}
			}
			sum += math.Log(float64(matches) / float64(count))
		}
		return sum / float64(count)
	}
	return phi(m) - phi(m+1)
}

// SampleEntropy computes SampEn(m, r), the negative log of the conditional
// probability that sequences matching for m points also match for m+1
// points, excluding self-matches. Returns +Inf when no m+1 matches exist
// and NaN for degenerate inputs.
func SampleEntropy(xs []float64, m int, r float64) float64 {
	n := len(xs)
	if n <= m+1 || m <= 0 || r <= 0 {
		return math.NaN()
	}
	count := func(m int) float64 {
		total := 0
		limit := n - m
		for i := 0; i < limit; i++ {
			for j := i + 1; j < limit; j++ {
				ok := true
				for k := 0; k < m; k++ {
					if math.Abs(xs[i+k]-xs[j+k]) > r {
						ok = false
						break
					}
				}
				if ok {
					total++
				}
			}
		}
		return float64(total)
	}
	b := count(m)
	a := count(m + 1)
	if b == 0 {
		return math.NaN()
	}
	if a == 0 {
		return math.Inf(1)
	}
	return -math.Log(a / b)
}

// TimeReversalAsymmetry returns tsfresh's time_reversal_asymmetry_statistic
// for the given lag: mean of x[i+2l]^2 * x[i+l] - x[i+l] * x[i]^2.
func TimeReversalAsymmetry(xs []float64, lag int) float64 {
	n := len(xs)
	if lag <= 0 || n <= 2*lag {
		return math.NaN()
	}
	s := 0.0
	for i := 0; i < n-2*lag; i++ {
		s += xs[i+2*lag]*xs[i+2*lag]*xs[i+lag] - xs[i+lag]*xs[i]*xs[i]
	}
	return s / float64(n-2*lag)
}

// RatioBeyondRSigma returns the fraction of values farther than r standard
// deviations from the mean.
func RatioBeyondRSigma(xs []float64, r float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m, sd := Mean(xs), Std(xs)
	count := 0
	for _, x := range xs {
		if math.Abs(x-m) > r*sd {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// PercentageReoccurring returns the fraction of values that appear more
// than once in the series (tsfresh's
// percentage_of_reoccurring_datapoints_to_all_datapoints).
func PercentageReoccurring(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	counts := make(map[float64]int, len(xs))
	for _, x := range xs {
		counts[x]++
	}
	re := 0
	for _, c := range counts {
		if c > 1 {
			re += c
		}
	}
	return float64(re) / float64(len(xs))
}

// HasDuplicateMax reports whether the maximum value occurs more than once.
func HasDuplicateMax(xs []float64) bool {
	if len(xs) == 0 {
		return false
	}
	m := Max(xs)
	n := 0
	for _, x := range xs {
		if x == m { //albacheck:ignore floatsafe exact match against the series' own Max counts duplicate extrema
			n++
			if n > 1 {
				return true
			}
		}
	}
	return false
}

// HasDuplicateMin reports whether the minimum value occurs more than once.
func HasDuplicateMin(xs []float64) bool {
	if len(xs) == 0 {
		return false
	}
	m := Min(xs)
	n := 0
	for _, x := range xs {
		if x == m { //albacheck:ignore floatsafe exact match against the series' own Min counts duplicate extrema
			n++
			if n > 1 {
				return true
			}
		}
	}
	return false
}

// SumOfReoccurringValues returns the sum over distinct values that occur
// more than once, counting each such value once.
func SumOfReoccurringValues(xs []float64) float64 {
	counts := make(map[float64]int, len(xs))
	for _, x := range xs {
		counts[x]++
	}
	s := 0.0
	for v, c := range counts {
		if c > 1 {
			s += v
		}
	}
	return s
}
