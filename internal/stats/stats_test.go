package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.IsNaN(want) {
		if !math.IsNaN(got) {
			t.Fatalf("%s: got %v, want NaN", name, got)
		}
		return
	}
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestMeanVarStd(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	almost(t, Mean(xs), 3, 1e-12, "mean")
	almost(t, Var(xs), 2, 1e-12, "var")
	almost(t, SampleVar(xs), 2.5, 1e-12, "samplevar")
	almost(t, Std(xs), math.Sqrt2, 1e-12, "std")
}

func TestEmptyInputsReturnNaN(t *testing.T) {
	var e []float64
	for name, f := range map[string]func([]float64) float64{
		"mean": Mean, "var": Var, "std": Std, "min": Min, "max": Max,
		"median": Median, "meanabs": MeanAbs, "rms": RMS,
		"mad": MedianAbsDeviation, "meanchange": MeanChange,
	} {
		if !math.IsNaN(f(e)) {
			t.Errorf("%s(empty) should be NaN", name)
		}
	}
	if Sum(e) != 0 {
		t.Errorf("Sum(empty) = %v, want 0", Sum(e))
	}
}

func TestMinMaxRange(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	almost(t, Min(xs), -9, 0, "min")
	almost(t, Max(xs), 6, 0, "max")
	almost(t, Range(xs), 15, 0, "range")
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	almost(t, Quantile(xs, 0), 1, 0, "q0")
	almost(t, Quantile(xs, 1), 4, 0, "q1")
	almost(t, Quantile(xs, 0.5), 2.5, 1e-12, "q0.5")
	almost(t, Quantile(xs, 0.25), 1.75, 1e-12, "q0.25")
	almost(t, Median([]float64{5}), 5, 0, "median single")
}

func TestQuantilesSortedMatchesQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	qs := []float64{0.05, 0.25, 0.5, 0.75, 0.95}
	got := QuantilesSorted(xs, qs...)
	for i, q := range qs {
		almost(t, got[i], Quantile(xs, q), 1e-12, "batch quantile")
	}
}

func TestIQRAndMAD(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	almost(t, IQR(xs), 4, 1e-12, "iqr")
	almost(t, MedianAbsDeviation(xs), 2, 1e-12, "mad")
}

func TestSkewnessKurtosisSymmetric(t *testing.T) {
	xs := []float64{-2, -1, 0, 1, 2}
	almost(t, Skewness(xs), 0, 1e-12, "skew symmetric")
	// Uniform five points: excess kurtosis is negative (platykurtic).
	if k := Kurtosis(xs); k >= 0 {
		t.Fatalf("kurtosis of uniform sample should be negative, got %v", k)
	}
	if !math.IsNaN(Skewness([]float64{1, 1})) {
		t.Fatal("skewness with n<3 should be NaN")
	}
	if !math.IsNaN(Kurtosis([]float64{1, 1, 1})) {
		t.Fatal("kurtosis with n<4 should be NaN")
	}
	if !math.IsNaN(Skewness([]float64{2, 2, 2, 2})) {
		t.Fatal("skewness of constant series should be NaN")
	}
}

func TestCrossingAndStrikes(t *testing.T) {
	xs := []float64{0, 2, -1, 3, -2, 4}
	if c := CrossingCount(xs, 0); c != 4 {
		t.Fatalf("crossings = %d, want 4", c)
	}
	xs2 := []float64{1, 2, 3, 0, 5, 6, 7, 8, 0}
	if s := LongestStrikeAbove(xs2, 0.5); s != 4 {
		t.Fatalf("strike above = %d, want 4", s)
	}
	if s := LongestStrikeBelow(xs2, 0.5); s != 1 {
		t.Fatalf("strike below = %d, want 1", s)
	}
}

func TestMonotonicRuns(t *testing.T) {
	xs := []float64{1, 2, 3, 3, 2, 1, 0, 5}
	if r := LongestMonotonicIncrease(xs); r != 4 {
		t.Fatalf("longest increase = %d, want 4", r)
	}
	if r := LongestMonotonicDecrease(xs); r != 5 {
		t.Fatalf("longest decrease = %d, want 5", r)
	}
	if LongestMonotonicIncrease(nil) != 0 {
		t.Fatal("empty should be 0")
	}
}

func TestChanges(t *testing.T) {
	xs := []float64{0, 1, 3, 6}
	almost(t, MeanChange(xs), 2, 1e-12, "meanchange")
	almost(t, MeanAbsChange([]float64{0, 1, -1, 2}), (1+2+3)/3.0, 1e-12, "meanabschange")
	almost(t, MeanSecondDerivativeCentral([]float64{0, 1, 4, 9}), ((4-2+0)/2.0+(9-8+1)/2.0)/2, 1e-12, "second deriv")
}

func TestAutocorrelation(t *testing.T) {
	// Perfectly alternating series has lag-1 autocorr near -1.
	xs := make([]float64, 100)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	if ac := Autocorrelation(xs, 1); ac > -0.95 {
		t.Fatalf("alternating lag-1 autocorr = %v, want near -1", ac)
	}
	almost(t, Autocorrelation(xs, 0), 1, 1e-12, "lag0")
	if !math.IsNaN(Autocorrelation([]float64{1, 1, 1}, 1)) {
		t.Fatal("constant series autocorr should be NaN")
	}
}

func TestPartialAutocorrelationAR1(t *testing.T) {
	// AR(1): PACF at lag 1 near phi, near 0 at lag 2.
	rng := rand.New(rand.NewSource(7))
	const phi = 0.8
	xs := make([]float64, 4000)
	for i := 1; i < len(xs); i++ {
		xs[i] = phi*xs[i-1] + rng.NormFloat64()
	}
	p1 := PartialAutocorrelation(xs, 1)
	p2 := PartialAutocorrelation(xs, 2)
	if math.Abs(p1-phi) > 0.1 {
		t.Fatalf("pacf(1) = %v, want ~%v", p1, phi)
	}
	if math.Abs(p2) > 0.1 {
		t.Fatalf("pacf(2) = %v, want ~0", p2)
	}
	if PartialAutocorrelation(xs, 0) != 1 {
		t.Fatal("pacf(0) must be 1")
	}
}

func TestLinearTrend(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 2.5*float64(i) + 7
	}
	slope, intercept, r := LinearTrend(xs)
	almost(t, slope, 2.5, 1e-9, "slope")
	almost(t, intercept, 7, 1e-9, "intercept")
	almost(t, r, 1, 1e-9, "r")
	_, _, rConst := LinearTrend([]float64{3, 3, 3})
	if !math.IsNaN(rConst) {
		t.Fatal("r of constant series should be NaN")
	}
}

func TestBinnedEntropy(t *testing.T) {
	if h := BinnedEntropy([]float64{5, 5, 5, 5}, 10); h != 0 {
		t.Fatalf("constant entropy = %v, want 0", h)
	}
	// Uniform over bins approaches log(bins).
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i)
	}
	h := BinnedEntropy(xs, 10)
	almost(t, h, math.Log(10), 1e-6, "uniform entropy")
}

func TestApproximateEntropyOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	regular := make([]float64, 200)
	noisy := make([]float64, 200)
	for i := range regular {
		regular[i] = math.Sin(float64(i) / 5)
		noisy[i] = rng.NormFloat64()
	}
	rr := 0.2 * Std(regular)
	rn := 0.2 * Std(noisy)
	if ApproximateEntropy(regular, 2, rr) >= ApproximateEntropy(noisy, 2, rn) {
		t.Fatal("regular signal should have lower ApEn than noise")
	}
	if ApproximateEntropy([]float64{1, 2}, 2, 0.1) != 0 {
		t.Fatal("short series ApEn should be 0")
	}
}

func TestSampleEntropyOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	regular := make([]float64, 150)
	noisy := make([]float64, 150)
	for i := range regular {
		regular[i] = math.Sin(float64(i) / 4)
		noisy[i] = rng.NormFloat64()
	}
	se1 := SampleEntropy(regular, 2, 0.2*Std(regular))
	se2 := SampleEntropy(noisy, 2, 0.2*Std(noisy))
	if !(se1 < se2) {
		t.Fatalf("SampEn(regular)=%v should be < SampEn(noise)=%v", se1, se2)
	}
}

func TestNumberPeaks(t *testing.T) {
	xs := []float64{0, 3, 0, 0, 5, 0, 1, 2, 1}
	if p := NumberPeaks(xs, 1); p != 3 {
		t.Fatalf("peaks support 1 = %d, want 3", p)
	}
	if p := NumberPeaks(xs, 2); p != 1 {
		t.Fatalf("peaks support 2 = %d, want 1", p)
	}
}

func TestC3AndTimeReversal(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	want := (1.0*2*3 + 2.0*3*4 + 3.0*4*5 + 4.0*5*6) / 4
	almost(t, C3(xs, 1), want, 1e-12, "c3")
	if !math.IsNaN(C3(xs, 3)) {
		t.Fatal("c3 with 2*lag >= n should be NaN")
	}
	// Symmetric (time reversible) signal has statistic near 0.
	sym := []float64{0, 1, 0, -1, 0, 1, 0, -1, 0, 1, 0, -1}
	if v := math.Abs(TimeReversalAsymmetry(sym, 1)); v > 0.3 {
		t.Fatalf("time reversal of symmetric signal = %v, want near 0", v)
	}
}

func TestCidCE(t *testing.T) {
	xs := []float64{0, 1, 0, 1}
	almost(t, CidCE(xs, false), math.Sqrt(3), 1e-12, "cidce")
	if CidCE([]float64{4, 4, 4}, true) != 0 {
		t.Fatal("normalized cid of constant should be 0")
	}
}

func TestDuplicatesAndReoccurring(t *testing.T) {
	xs := []float64{1, 2, 2, 3, 3, 3}
	almost(t, PercentageReoccurring(xs), 5.0/6, 1e-12, "pct reoccurring")
	almost(t, SumOfReoccurringValues(xs), 5, 1e-12, "sum reoccurring")
	if !HasDuplicateMax(xs) {
		t.Fatal("max 3 duplicated")
	}
	if HasDuplicateMin(xs) {
		t.Fatal("min 1 not duplicated")
	}
}

func TestRatioBeyondRSigma(t *testing.T) {
	xs := []float64{0, 0, 0, 0, 100}
	r := RatioBeyondRSigma(xs, 1)
	almost(t, r, 0.2, 1e-12, "ratio beyond")
}

func TestCountsAndArg(t *testing.T) {
	xs := []float64{1, 5, 3, 5, 2}
	if CountAbove(xs, 2.5) != 3 || CountBelow(xs, 2.5) != 2 {
		t.Fatal("count above/below wrong")
	}
	if ArgMax(xs) != 1 || ArgMin(xs) != 0 {
		t.Fatal("argmax/argmin wrong")
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Fatal("empty arg should be -1")
	}
}

// Property: variance is non-negative and invariant under shifting.
func TestQuickVarianceProperties(t *testing.T) {
	f := func(raw []float64, shiftRaw float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		shift := math.Mod(shiftRaw, 1000)
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			shift = 1
		}
		v1 := Var(xs)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		v2 := Var(shifted)
		tol := 1e-6 * (1 + math.Abs(v1))
		return v1 >= -1e-12 && math.Abs(v1-v2) < tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qs := QuantilesSorted(xs, 0.1, 0.3, 0.5, 0.7, 0.9)
		lo, hi := Min(xs), Max(xs)
		prev := lo
		for _, q := range qs {
			if q < prev-1e-12 || q > hi+1e-12 {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: autocorrelation magnitudes never exceed ~1.
func TestQuickAutocorrBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		for lag := 0; lag < n; lag += 3 {
			ac := Autocorrelation(xs, lag)
			if !math.IsNaN(ac) && math.Abs(ac) > 1+1e-9 {
				t.Fatalf("autocorr out of bounds: lag=%d ac=%v", lag, ac)
			}
		}
	}
}
