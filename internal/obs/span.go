package obs

import "time"

// Span times one pipeline stage into a histogram of seconds. Create with
// StartSpan at the top of the stage and End it when the stage completes:
//
//	span := obs.StartSpan(parseLatency)
//	defer span.End()
//
// Span is a value type — starting one allocates nothing.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan starts timing into h. A nil histogram yields a no-op span.
func StartSpan(h *Histogram) Span {
	return Span{h: h, start: time.Now()}
}

// End observes the elapsed time (in seconds) into the span's histogram
// and returns the duration. Ending a span twice double-counts; don't.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.h != nil {
		s.h.Observe(d.Seconds())
	}
	return d
}

// ObserveSince records the seconds elapsed since start into h — the
// one-liner form for stages whose start time is already at hand.
func ObserveSince(h *Histogram, start time.Time) {
	h.Observe(time.Since(start).Seconds())
}
