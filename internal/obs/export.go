package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// FamilyInfo describes one registered metric family without its series
// data — the registry's self-documentation surface (docs/OBSERVABILITY.md
// is tested against it).
type FamilyInfo struct {
	// Name is the family name.
	Name string
	// Kind is the instrument kind.
	Kind Kind
	// Unit is the documented value unit ("" when dimensionless).
	Unit string
	// Help is the one-line description.
	Help string
	// LabelKeys are the family's label dimensions (nil when unlabeled).
	LabelKeys []string
}

// Families lists every registered family, sorted by name.
func (r *Registry) Families() []FamilyInfo {
	r.mu.RLock()
	out := make([]FamilyInfo, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, FamilyInfo{
			Name:      f.opts.Name,
			Kind:      f.kind,
			Unit:      f.opts.Unit,
			Help:      f.opts.Help,
			LabelKeys: append([]string{}, f.keys...),
		})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Snapshot is a consistent-enough point-in-time copy of a registry:
// every series is read atomically; the set of series is read under the
// registry lock. It marshals directly to the /api/metrics JSON format.
type Snapshot struct {
	// Families holds every family, sorted by name.
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one family with all its series.
type FamilySnapshot struct {
	// Name is the family name.
	Name string `json:"name"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Unit is the documented unit, omitted when dimensionless.
	Unit string `json:"unit,omitempty"`
	// Help is the one-line description.
	Help string `json:"help,omitempty"`
	// Series holds one entry per label-value combination, sorted by
	// label values.
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one label-value combination's current state.
type SeriesSnapshot struct {
	// Labels maps label keys to this series' values; nil when unlabeled.
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter count or gauge value; 0 for histograms.
	Value float64 `json:"value"`
	// Count is the histogram observation count.
	Count uint64 `json:"count,omitempty"`
	// Sum is the histogram observation sum.
	Sum float64 `json:"sum,omitempty"`
	// Buckets are the histogram's finite buckets with cumulative counts
	// (the +Inf bucket is implied: its cumulative count equals Count).
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one cumulative histogram bucket.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound.
	UpperBound float64 `json:"le"`
	// Count is the cumulative observation count at or below UpperBound.
	Count uint64 `json:"count"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].opts.Name < fams[j].opts.Name })

	var snap Snapshot
	for _, f := range fams {
		fs := FamilySnapshot{
			Name: f.opts.Name,
			Kind: f.kind.String(),
			Unit: f.opts.Unit,
			Help: f.opts.Help,
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ss := SeriesSnapshot{}
			if vals := f.labels[k]; len(vals) > 0 {
				ss.Labels = make(map[string]string, len(vals))
				for i, lk := range f.keys {
					ss.Labels[lk] = vals[i]
				}
			}
			switch m := f.series[k].(type) {
			case *Counter:
				ss.Value = float64(m.Value())
			case *Gauge:
				ss.Value = m.Value()
			case *Histogram:
				ss.Count = m.Count()
				ss.Sum = m.Sum()
				ss.Buckets = make([]Bucket, len(m.uppers))
				cum := uint64(0)
				for i, u := range m.uppers {
					cum += m.counts[i].Load()
					ss.Buckets[i] = Bucket{UpperBound: u, Count: cum}
				}
			}
			fs.Series = append(fs.Series, ss)
		}
		f.mu.RUnlock()
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE comments followed by one
// sample line per series; histograms expand to cumulative _bucket
// series (including le="+Inf"), _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, fs := range r.Snapshot().Families {
		if err := writePromFamily(w, fs); err != nil {
			return err
		}
	}
	return nil
}

func writePromFamily(w io.Writer, fs FamilySnapshot) error {
	if fs.Help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fs.Name, escapeHelp(fs.Help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fs.Name, fs.Kind); err != nil {
		return err
	}
	for _, ss := range fs.Series {
		base := promLabels(ss.Labels, "", "")
		if fs.Kind != KindHistogram.String() {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", fs.Name, base, promFloat(ss.Value)); err != nil {
				return err
			}
			continue
		}
		for _, b := range ss.Buckets {
			le := promLabels(ss.Labels, "le", promFloat(b.UpperBound))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fs.Name, le, b.Count); err != nil {
				return err
			}
		}
		inf := promLabels(ss.Labels, "le", "+Inf")
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fs.Name, inf, ss.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fs.Name, base, promFloat(ss.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", fs.Name, base, ss.Count); err != nil {
			return err
		}
	}
	return nil
}

// promLabels renders a label block, optionally appending one extra pair
// (the histogram "le" label). Returns "" when there are no labels.
func promLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// promFloat renders a sample value; Prometheus accepts Go 'g' formatting
// plus the special +Inf/-Inf/NaN spellings, which strconv produces.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Summary renders a compact human-readable view of the snapshot —
// counters and gauges as "name{labels} value", histograms as count and
// mean — the form the examples print at the end of a run.
func (s Snapshot) Summary() string {
	var b strings.Builder
	for _, fs := range s.Families {
		for _, ss := range fs.Series {
			name := fs.Name + promLabels(ss.Labels, "", "")
			switch fs.Kind {
			case KindHistogram.String():
				if ss.Count == 0 {
					continue
				}
				mean := ss.Sum / float64(ss.Count)
				fmt.Fprintf(&b, "%-52s count %-8d mean %s\n", name, ss.Count, formatUnit(mean, fs.Unit))
			default:
				fmt.Fprintf(&b, "%-52s %s\n", name, formatUnit(ss.Value, fs.Unit))
			}
		}
	}
	return b.String()
}

// formatUnit pretty-prints seconds as a duration-style value and leaves
// everything else in compact float form.
func formatUnit(v float64, unit string) string {
	if unit == "seconds" {
		switch {
		case v < 1e-3:
			return fmt.Sprintf("%.1fµs", v*1e6)
		case v < 1:
			return fmt.Sprintf("%.2fms", v*1e3)
		default:
			return fmt.Sprintf("%.3fs", v)
		}
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// Handler serves the registry over HTTP: JSON by default, the
// Prometheus text exposition with ?format=prometheus (or an Accept
// header preferring text/plain) — the body mounted at the annotation
// server's GET /api/metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		if wantsPrometheus(req) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = r.WritePrometheus(w) //albacheck:ignore errsilent best-effort body write; after the header is sent a failed write only means the scraper hung up
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w) //albacheck:ignore errsilent best-effort body write; after the header is sent a failed write only means the scraper hung up
	})
}

// wantsPrometheus decides the exposition format for Handler.
func wantsPrometheus(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prometheus", "prom", "text":
		return true
	case "json":
		return false
	}
	accept := req.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}
