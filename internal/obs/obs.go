// Package obs is the observability substrate of the repository: a
// dependency-free (stdlib-only), race-safe metrics registry with three
// instrument kinds — monotonic counters, gauges, and fixed-bucket
// histograms — plus a lightweight span timer for stage latencies.
//
// Every hot path of the pipeline (ldms parse, stream windowing, feature
// extraction, model fit/predict, query selection, HTTP serving) registers
// its metric families here at package init, so any binary that imports an
// instrumented package can export a consistent snapshot: the annotation
// server serves the default registry on GET /api/metrics (JSON and
// Prometheus text exposition), cmd/experiments prints it after a run with
// -metrics, and the examples print a compact summary. The full metric
// catalog is documented in docs/OBSERVABILITY.md; a test walks the
// registry and fails if a registered family is missing from that file.
//
// Design constraints, in priority order:
//
//   - Hot-path cost: Counter.Inc is a single atomic add (a few ns, well
//     under the 100ns budget bench_test.go enforces); Histogram.Observe
//     is a binary search plus three atomic operations. No locks are
//     taken on the update paths.
//   - Race safety: all instruments may be updated, and the registry
//     snapshotted, from any number of goroutines concurrently.
//   - No dependencies: the exposition formats are implemented directly
//     against io.Writer / encoding/json.
//
// Families and series: a family is one metric name with a fixed kind,
// unit, help string and label-key set (registered once, typically in a
// package var block); a series is one label-value combination within the
// family. Unlabeled instruments are families with a single anonymous
// series. Re-registering an identical family returns the existing one;
// re-registering a name with a different kind or label-key set panics
// (programmer error, caught at init).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind enumerates the instrument kinds a family can carry.
type Kind int

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution with sum and count.
	KindHistogram
)

// String names the kind in export formats ("counter", "gauge",
// "histogram").
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Opts names and documents a metric family.
type Opts struct {
	// Name is the family name, in Prometheus style
	// ([a-zA-Z_:][a-zA-Z0-9_:]*). Counters end in _total by convention.
	Name string
	// Help is the one-line description emitted as # HELP.
	Help string
	// Unit documents the value unit ("seconds", "rows", "ratio", ...);
	// informational only, carried through snapshots.
	Unit string
	// Buckets are the inclusive upper bounds of a histogram's finite
	// buckets, in increasing order; an overflow (+Inf) bucket is always
	// added. Nil defaults to LatencyBuckets. Ignored by counters/gauges.
	Buckets []float64
}

// LatencyBuckets is the default histogram bucketing: 10µs to 10s in a
// 1-2.5-5 progression, suited to the pipeline's stage latencies (a
// feature extraction is ~ms, a forest fit ~tens of ms, an HTTP request
// anywhere between).
var LatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// SizeBuckets is a generic bucketing for counts and sizes (1 to 100k in
// a 1-2-5 progression).
var SizeBuckets = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
}

// labelSep joins label values into series keys; \xff cannot appear in
// valid UTF-8 label values produced by this codebase.
const labelSep = "\xff"

// Registry holds metric families and produces snapshots. The zero value
// is not usable; create with NewRegistry or use Default.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// family is one registered metric name.
type family struct {
	opts Opts
	kind Kind
	keys []string // label keys, fixed at registration

	mu     sync.RWMutex
	series map[string]interface{} // *Counter | *Gauge | *Histogram
	labels map[string][]string    // series key -> label values
}

// NewRegistry returns an empty registry, independent of Default.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry every instrumented package
// registers into.
func Default() *Registry { return defaultRegistry }

// register fetches or creates a family, validating compatibility.
func (r *Registry) register(o Opts, kind Kind, keys []string) *family {
	if o.Name == "" {
		panic("obs: metric family with empty name")
	}
	if !validName(o.Name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", o.Name))
	}
	for _, k := range keys {
		if !validName(k) {
			panic(fmt.Sprintf("obs: invalid label key %q on %q", k, o.Name))
		}
	}
	if kind == KindHistogram {
		if o.Buckets == nil {
			o.Buckets = LatencyBuckets
		}
		if !sort.Float64sAreSorted(o.Buckets) || len(o.Buckets) == 0 {
			panic(fmt.Sprintf("obs: histogram %q needs sorted non-empty buckets", o.Name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[o.Name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: %q re-registered as %v, was %v", o.Name, kind, f.kind))
		}
		if strings.Join(f.keys, labelSep) != strings.Join(keys, labelSep) {
			panic(fmt.Sprintf("obs: %q re-registered with label keys %v, was %v", o.Name, keys, f.keys))
		}
		return f
	}
	f := &family{
		opts:   o,
		kind:   kind,
		keys:   append([]string{}, keys...),
		series: map[string]interface{}{},
		labels: map[string][]string{},
	}
	r.families[o.Name] = f
	return f
}

// get fetches or creates the series for the given label values.
func (f *family) get(vals []string, mk func() interface{}) interface{} {
	if len(vals) != len(f.keys) {
		panic(fmt.Sprintf("obs: %q wants %d label values, got %d", f.opts.Name, len(f.keys), len(vals)))
	}
	key := strings.Join(vals, labelSep)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s = mk()
	f.series[key] = s
	f.labels[key] = append([]string{}, vals...)
	return s
}

// validName reports whether s is a legal metric or label name.
func validName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

// --- Counter -------------------------------------------------------------

// Counter is a monotonically increasing count. Updates are single atomic
// adds and safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers (or fetches) an unlabeled counter family.
func (r *Registry) Counter(o Opts) *Counter {
	f := r.register(o, KindCounter, nil)
	return f.get(nil, func() interface{} { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with label dimensions.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(o Opts, keys ...string) *CounterVec {
	return &CounterVec{r.register(o, KindCounter, keys)}
}

// With returns the counter series for the given label values, creating
// it on first use. Resolve once and reuse the handle on hot paths.
func (v *CounterVec) With(vals ...string) *Counter {
	return v.f.get(vals, func() interface{} { return &Counter{} }).(*Counter)
}

// --- Gauge ---------------------------------------------------------------

// Gauge is a float64 value that can move in both directions. Safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increases (or, negative, decreases) the gauge by v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (or fetches) an unlabeled gauge family.
func (r *Registry) Gauge(o Opts) *Gauge {
	f := r.register(o, KindGauge, nil)
	return f.get(nil, func() interface{} { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with label dimensions.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(o Opts, keys ...string) *GaugeVec {
	return &GaugeVec{r.register(o, KindGauge, keys)}
}

// With returns the gauge series for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge {
	return v.f.get(vals, func() interface{} { return &Gauge{} }).(*Gauge)
}

// --- Histogram -----------------------------------------------------------

// Histogram accumulates observations into fixed buckets (inclusive upper
// bounds, Prometheus "le" semantics) plus an overflow bucket, tracking
// the total count and sum. Observe is lock-free and safe for concurrent
// use; NaN observations are dropped.
type Histogram struct {
	uppers []float64 // finite bucket upper bounds, sorted ascending
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomicFloat
}

func newHistogram(uppers []float64) *Histogram {
	return &Histogram{
		uppers: uppers,
		counts: make([]atomic.Uint64, len(uppers)+1), // +overflow
	}
}

// Observe records one value. A value equal to a bucket's upper bound
// lands in that bucket (le semantics); values above the last finite
// bound land in the overflow (+Inf) bucket.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Histogram registers (or fetches) an unlabeled histogram family.
func (r *Registry) Histogram(o Opts) *Histogram {
	f := r.register(o, KindHistogram, nil)
	return f.get(nil, func() interface{} { return newHistogram(f.opts.Buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with label dimensions; every series
// shares the family's buckets.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(o Opts, keys ...string) *HistogramVec {
	return &HistogramVec{r.register(o, KindHistogram, keys)}
}

// With returns the histogram series for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	return v.f.get(vals, func() interface{} { return newHistogram(v.f.opts.Buckets) }).(*Histogram)
}

// --- atomic float --------------------------------------------------------

// atomicFloat is a float64 updated with compare-and-swap.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

func (f *atomicFloat) Value() float64 { return math.Float64frombits(f.bits.Load()) }

// --- Default-registry conveniences ---------------------------------------

// NewCounter registers o on the default registry.
func NewCounter(o Opts) *Counter { return Default().Counter(o) }

// NewCounterVec registers o on the default registry.
func NewCounterVec(o Opts, keys ...string) *CounterVec { return Default().CounterVec(o, keys...) }

// NewGauge registers o on the default registry.
func NewGauge(o Opts) *Gauge { return Default().Gauge(o) }

// NewGaugeVec registers o on the default registry.
func NewGaugeVec(o Opts, keys ...string) *GaugeVec { return Default().GaugeVec(o, keys...) }

// NewHistogram registers o on the default registry.
func NewHistogram(o Opts) *Histogram { return Default().Histogram(o) }

// NewHistogramVec registers o on the default registry.
func NewHistogramVec(o Opts, keys ...string) *HistogramVec { return Default().HistogramVec(o, keys...) }
