package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Opts{Name: "c_total", Help: "h", Unit: "events"})
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	// Re-registering an identical family returns the same series.
	if again := r.Counter(Opts{Name: "c_total", Help: "h", Unit: "events"}); again != c {
		t.Fatal("identical re-registration returned a different counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	g := NewRegistry().Gauge(Opts{Name: "g", Help: "h"})
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("Value = %v, want 2.25", got)
	}
	g.Set(-7)
	if got := g.Value(); got != -7 {
		t.Fatalf("Value after Set = %v, want -7", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Opts{Name: "h_seconds", Help: "h", Unit: "seconds", Buckets: []float64{1, 2, 5}})

	// le semantics: a value equal to an upper bound lands in that bucket.
	h.Observe(1)          // bucket le=1
	h.Observe(2)          // bucket le=2
	h.Observe(5)          // bucket le=5
	h.Observe(0.5)        // bucket le=1
	h.Observe(3)          // bucket le=5
	h.Observe(6)          // overflow (+Inf)
	h.Observe(math.NaN()) // dropped

	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6 (NaN must be dropped)", got)
	}
	if got, want := h.Sum(), 1.0+2+5+0.5+3+6; got != want {
		t.Fatalf("Sum = %v, want %v", got, want)
	}

	snap := r.Snapshot()
	if len(snap.Families) != 1 || len(snap.Families[0].Series) != 1 {
		t.Fatalf("unexpected snapshot shape: %+v", snap)
	}
	ss := snap.Families[0].Series[0]
	// Cumulative finite buckets: le=1 → 2 (1, 0.5); le=2 → 3; le=5 → 5.
	want := []Bucket{{1, 2}, {2, 3}, {5, 5}}
	if len(ss.Buckets) != len(want) {
		t.Fatalf("got %d buckets, want %d", len(ss.Buckets), len(want))
	}
	for i, b := range ss.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, b, want[i])
		}
	}
	// The +Inf bucket is implied: cumulative count equals Count.
	if ss.Count != 6 {
		t.Fatalf("snapshot Count = %d, want 6", ss.Count)
	}
}

func TestRegistrationMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter(Opts{Name: "m_total", Help: "h"})
	mustPanic(t, "kind mismatch", func() { r.Gauge(Opts{Name: "m_total", Help: "h"}) })

	r.CounterVec(Opts{Name: "v_total", Help: "h"}, "a", "b")
	mustPanic(t, "label-key mismatch", func() { r.CounterVec(Opts{Name: "v_total", Help: "h"}, "a") })
	mustPanic(t, "label-value arity", func() { r.CounterVec(Opts{Name: "v_total", Help: "h"}, "a", "b").With("only-one") })

	mustPanic(t, "invalid name", func() { r.Counter(Opts{Name: "bad name", Help: "h"}) })
	mustPanic(t, "empty name", func() { r.Counter(Opts{Help: "h"}) })
	mustPanic(t, "unsorted buckets", func() {
		r.Histogram(Opts{Name: "hh", Help: "h", Buckets: []float64{2, 1}})
	})
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", what)
		}
	}()
	f()
}

func TestConcurrentHammering(t *testing.T) {
	// Hammer every instrument kind from many goroutines while other
	// goroutines snapshot and export; run under -race this is the
	// registry's central safety test.
	r := NewRegistry()
	c := r.Counter(Opts{Name: "c_total", Help: "h"})
	cv := r.CounterVec(Opts{Name: "cv_total", Help: "h"}, "k")
	g := r.Gauge(Opts{Name: "g", Help: "h"})
	h := r.Histogram(Opts{Name: "h_seconds", Help: "h", Buckets: LatencyBuckets})
	hv := r.HistogramVec(Opts{Name: "hv_seconds", Help: "h", Buckets: []float64{0.5, 1}}, "k")

	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	labels := []string{"a", "b", "c"}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				cv.With(labels[i%len(labels)]).Add(2)
				g.Add(1)
				h.Observe(float64(i) * 1e-5)
				hv.With(labels[(i+w)%len(labels)]).Observe(0.75)
			}
		}(w)
	}
	// Concurrent readers: snapshots and both exports must not race.
	for rdr := 0; rdr < 3; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = r.Snapshot()
				_ = r.WritePrometheus(&strings.Builder{})
				var b strings.Builder
				_ = r.Snapshot().WriteJSON(&b)
			}
		}()
	}
	wg.Wait()

	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != float64(total) {
		t.Errorf("gauge = %v, want %v", got, float64(total))
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	var labeled uint64
	for _, l := range labels {
		labeled += cv.With(l).Value()
	}
	if labeled != 2*total {
		t.Errorf("summed labeled counters = %d, want %d", labeled, 2*total)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(Opts{Name: "jobs_total", Help: "Jobs done."}).Add(3)
	r.GaugeVec(Opts{Name: "depth", Help: "Queue depth."}, "queue").With("in").Set(7)
	h := r.Histogram(Opts{Name: "lat_seconds", Help: "Latency.", Buckets: []float64{0.1, 1}})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs done.",
		"# TYPE jobs_total counter",
		"jobs_total 3",
		"# TYPE depth gauge",
		`depth{queue="in"} 7`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 2.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q\n---\n%s", want, out)
		}
	}
}

func TestJSONSnapshotRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter(Opts{Name: "n_total", Help: "h", Unit: "events"}).Inc()
	h := r.Histogram(Opts{Name: "d_seconds", Help: "h", Unit: "seconds", Buckets: []float64{1}})
	h.Observe(0.5)
	h.Observe(3) // overflow: must not put +Inf into the JSON

	var b strings.Builder
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v (JSON cannot carry Inf — finite buckets only)", err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatalf("round-trip unmarshal: %v", err)
	}
	if len(back.Families) != 2 {
		t.Fatalf("got %d families, want 2", len(back.Families))
	}
	for _, fs := range back.Families {
		if fs.Name == "d_seconds" {
			if fs.Series[0].Count != 2 || len(fs.Series[0].Buckets) != 1 {
				t.Fatalf("histogram series mangled: %+v", fs.Series[0])
			}
		}
	}
}

func TestFamiliesListsSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter(Opts{Name: "zz_total", Help: "z"})
	r.Gauge(Opts{Name: "aa", Help: "a"})
	r.HistogramVec(Opts{Name: "mm_seconds", Help: "m", Unit: "seconds"}, "stage")
	fams := r.Families()
	if len(fams) != 3 {
		t.Fatalf("got %d families, want 3", len(fams))
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1].Name > fams[i].Name {
			t.Fatalf("families not sorted: %v before %v", fams[i-1].Name, fams[i].Name)
		}
	}
	if fams[1].Kind != KindHistogram || fams[1].LabelKeys[0] != "stage" {
		t.Fatalf("family metadata wrong: %+v", fams[1])
	}
}
