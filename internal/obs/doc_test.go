package obs_test

// This test is the contract behind docs/OBSERVABILITY.md's claim of
// completeness: it imports every instrumented package (registering all
// metric families on the default registry), walks the registry, and
// fails if any family is missing from the document.

import (
	"os"
	"strings"
	"testing"

	"albadross/internal/obs"

	// Imported for their metric-registration side effects: each package
	// registers its families on obs.Default() at init.
	_ "albadross/internal/active"
	_ "albadross/internal/drift"
	_ "albadross/internal/features"
	_ "albadross/internal/fleet"
	_ "albadross/internal/ldms"
	_ "albadross/internal/ml"
	_ "albadross/internal/ml/forest"
	_ "albadross/internal/registry"
	_ "albadross/internal/server"
	_ "albadross/internal/stream"
)

func TestEveryFamilyIsDocumented(t *testing.T) {
	doc, err := os.ReadFile("../../docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatalf("reading docs/OBSERVABILITY.md: %v", err)
	}
	text := string(doc)
	fams := obs.Default().Families()
	if len(fams) < 20 {
		t.Fatalf("only %d families registered — instrumented packages missing from the import list?", len(fams))
	}
	for _, f := range fams {
		// The catalog lists each family in a table cell as `name`.
		if !strings.Contains(text, "`"+f.Name+"`") {
			t.Errorf("family %s (%v) is not documented in docs/OBSERVABILITY.md", f.Name, f.Kind)
		}
		if f.Help == "" {
			t.Errorf("family %s registered without Help text", f.Name)
		}
		if f.Unit == "" {
			t.Errorf("family %s registered without a Unit", f.Name)
		}
	}
}

// TestFamilyNamingConventions keeps the registry Prometheus-idiomatic:
// counters end in _total, histograms measuring time end in _seconds.
func TestFamilyNamingConventions(t *testing.T) {
	for _, f := range obs.Default().Families() {
		switch f.Kind {
		case obs.KindCounter:
			if !strings.HasSuffix(f.Name, "_total") {
				t.Errorf("counter %s should end in _total", f.Name)
			}
		case obs.KindHistogram:
			if f.Unit == "seconds" && !strings.HasSuffix(f.Name, "_seconds") {
				t.Errorf("seconds histogram %s should end in _seconds", f.Name)
			}
		}
	}
}
