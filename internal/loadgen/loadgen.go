// Package loadgen drives the annotation server's /api/diagnose endpoint
// with synthetic traffic and measures throughput and latency
// percentiles. It is the measurement half of the serving benchmark
// (BENCH_4.json): cmd/loadgen wraps it as a CLI for live servers and as
// a self-contained benchmark harness for verify.sh --deep.
//
// The generator is stdlib-only. Each worker runs its own request loop
// (closed-loop by default; open-loop when a target QPS is set) against
// the diagnose endpoint, posting either single feature vectors or bulk
// batch requests, and records per-request wall times. Results merge
// into one sorted latency population for percentile math.
package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Config parameterizes one load-generation run.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Duration is how long to generate load.
	Duration time.Duration
	// Concurrency is the number of independent request loops.
	Concurrency int
	// QPS, when positive, paces the whole fleet to this aggregate request
	// rate (open loop). Zero means closed loop: every worker fires its
	// next request as soon as the previous one answers.
	QPS float64
	// Rows is the number of feature vectors per request: 1 posts the
	// classic {"features": ...} payload, larger values post bulk
	// {"batch": ...} requests.
	Rows int
	// Dim is the feature-vector width. When zero it is discovered from
	// GET /api/schema.
	Dim int
	// Seed drives the synthetic feature values.
	Seed int64
	// Client optionally overrides the HTTP client (timeouts, transport).
	Client *http.Client
}

// Result summarizes one run.
type Result struct {
	// Requests is the number of completed HTTP requests (any status).
	Requests int `json:"requests"`
	// Rows is the number of feature vectors diagnosed (Requests x Rows
	// for successful requests).
	Rows int `json:"rows"`
	// Errors counts transport failures and non-200 responses.
	Errors int `json:"errors"`
	// ElapsedSec is the measured wall time of the run.
	ElapsedSec float64 `json:"elapsed_sec"`
	// RequestsPerSec is Requests / ElapsedSec.
	RequestsPerSec float64 `json:"requests_per_sec"`
	// RowsPerSec is Rows / ElapsedSec — the headline throughput number.
	RowsPerSec float64 `json:"rows_per_sec"`
	// P50Ms, P90Ms, P99Ms, MaxMs are request latency percentiles in
	// milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

// schemaPayload is the subset of /api/schema the generators need.
type schemaPayload struct {
	FeatureDim int      `json:"feature_dim"`
	Metrics    []string `json:"metrics"`
}

// fetchSchema retrieves the server's diagnosis contract — the one
// discovery call both the diagnose and the fleet generators build on.
func fetchSchema(client *http.Client, baseURL string) (schemaPayload, error) {
	var s schemaPayload
	resp, err := client.Get(baseURL + "/api/schema")
	if err != nil {
		return s, err
	}
	defer func() { _ = resp.Body.Close() }() //albacheck:ignore errsilent read-only GET; a close failure cannot invalidate the decoded payload
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("GET /api/schema: status %d", resp.StatusCode)
	}
	err = json.NewDecoder(resp.Body).Decode(&s)
	return s, err
}

// FetchDim asks a running server for its feature width via /api/schema.
func FetchDim(client *http.Client, baseURL string) (int, error) {
	s, err := fetchSchema(client, baseURL)
	if err != nil {
		return 0, err
	}
	if s.FeatureDim <= 0 {
		return 0, fmt.Errorf("schema reports feature_dim %d", s.FeatureDim)
	}
	return s.FeatureDim, nil
}

// FetchMetrics asks a running server for its raw telemetry width (the
// metric count bulk-ingest rows must carry) via /api/schema.
func FetchMetrics(client *http.Client, baseURL string) (int, error) {
	s, err := fetchSchema(client, baseURL)
	if err != nil {
		return 0, err
	}
	if len(s.Metrics) == 0 {
		return 0, errors.New("schema reports no raw metrics (window mode is off)")
	}
	return len(s.Metrics), nil
}

// worker state: one request loop's latency samples and counts.
type workerStats struct {
	lat      []time.Duration
	requests int
	rows     int
	errors   int
}

// Run generates load per cfg and returns the merged measurement.
func Run(cfg Config) (*Result, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 1
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("loadgen: duration must be positive")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	dim := cfg.Dim
	if dim == 0 {
		var err error
		if dim, err = FetchDim(client, cfg.BaseURL); err != nil {
			return nil, fmt.Errorf("loadgen: discovering feature dim: %w", err)
		}
	}

	// Open-loop pacing: each worker owns an equal share of the target
	// rate and fires on its own clock.
	var interval time.Duration
	if cfg.QPS > 0 {
		interval = time.Duration(float64(time.Second) * float64(cfg.Concurrency) / cfg.QPS)
	}

	url := cfg.BaseURL + "/api/diagnose"
	deadline := time.Now().Add(cfg.Duration)
	stats := make([]workerStats, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
			body := make([]byte, 0, 256)
			next := time.Now()
			for time.Now().Before(deadline) {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
					next = next.Add(interval)
				}
				body = appendRequestBody(body[:0], rng, dim, cfg.Rows)
				t0 := time.Now()
				ok := post(client, url, body)
				st.lat = append(st.lat, time.Since(t0))
				st.requests++
				if ok {
					st.rows += cfg.Rows
				} else {
					st.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	return mergeStats(stats, time.Since(start))
}

// mergeStats folds per-worker request loops into one Result: summed
// counts, one merged latency population, percentile math. Shared by
// the diagnose and fleet drivers so the two report identically.
func mergeStats(stats []workerStats, elapsed time.Duration) (*Result, error) {
	res := &Result{ElapsedSec: elapsed.Seconds()}
	var all []time.Duration
	for i := range stats {
		res.Requests += stats[i].requests
		res.Rows += stats[i].rows
		res.Errors += stats[i].errors
		all = append(all, stats[i].lat...)
	}
	if res.Requests == 0 {
		return nil, errors.New("loadgen: no requests completed within the duration")
	}
	res.RequestsPerSec = float64(res.Requests) / res.ElapsedSec
	res.RowsPerSec = float64(res.Rows) / res.ElapsedSec
	res.P50Ms = Percentile(all, 0.50).Seconds() * 1e3
	res.P90Ms = Percentile(all, 0.90).Seconds() * 1e3
	res.P99Ms = Percentile(all, 0.99).Seconds() * 1e3
	res.MaxMs = Percentile(all, 1).Seconds() * 1e3
	return res, nil
}

// appendRequestBody builds one diagnose request payload in place:
// {"features": [...]} for rows == 1, {"batch": [[...], ...]} otherwise.
// Values are uniform in [0, 1) — the synthetic benchmark dataset's
// feature range.
func appendRequestBody(dst []byte, rng *rand.Rand, dim, rows int) []byte {
	appendVec := func(dst []byte) []byte {
		dst = append(dst, '[')
		for i := 0; i < dim; i++ {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendFloat(dst, rng.Float64())
		}
		return append(dst, ']')
	}
	if rows == 1 {
		dst = append(dst, `{"features":`...)
		dst = appendVec(dst)
		return append(dst, '}')
	}
	dst = append(dst, `{"batch":[`...)
	for r := 0; r < rows; r++ {
		if r > 0 {
			dst = append(dst, ',')
		}
		dst = appendVec(dst)
	}
	return append(dst, `]}`...)
}

// appendFloat formats a value in [0, 1) with fixed short precision —
// enough entropy to dodge any caching while keeping payloads compact.
// strconv.AppendFloat keeps the generator cheap: on small machines the
// client and server share cores, so formatting cost skews the measured
// throughput.
func appendFloat(dst []byte, v float64) []byte {
	return strconv.AppendFloat(dst, v, 'f', 4, 64)
}

// post sends one diagnose request and reports whether it succeeded.
// Bodies are drained so connections are reused.
func post(client *http.Client, url string, body []byte) bool {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	drainBody(resp)
	if err := resp.Body.Close(); err != nil {
		return false
	}
	return resp.StatusCode == http.StatusOK
}

// Percentile returns the q-quantile (0 <= q <= 1) of a latency
// population using nearest-rank interpolation. The population is
// sorted in place on first use when it is not already ascending, so
// callers need not pre-sort; repeated calls over the same slice pay
// only an O(n) check. An empty population yields 0.
func Percentile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	if !sort.SliceIsSorted(lat, func(i, j int) bool { return lat[i] < lat[j] }) {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	}
	if q <= 0 {
		return lat[0]
	}
	if q >= 1 {
		return lat[len(lat)-1]
	}
	pos := q * float64(len(lat)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(lat) {
		return lat[len(lat)-1]
	}
	return lat[lo] + time.Duration(frac*float64(lat[lo+1]-lat[lo]))
}
