// Fleet load generation: drives POST /api/ingest/bulk with interleaved
// multi-node LDMS-style batches — the measurement half of BENCH_6.json.
// Each worker owns a disjoint slice of the logical node population and
// maintains per-node monotone timestamps, so the server's duplicate
// screening never trips; per-node value streams are seeded with
// runner.CellSeed so the traffic is node-skewed but reproducible. The
// driver understands the bulk endpoint's back-pressure contract: a 429
// is partial accept, not an error — its accounting is folded in and the
// Retry-After advice optionally honored.
package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"albadross/internal/runner"
)

// FleetConfig parameterizes one bulk-ingest load run.
type FleetConfig struct {
	// BaseURL is the server root.
	BaseURL string
	// Duration is how long to generate load.
	Duration time.Duration
	// Concurrency is the number of independent request loops; the node
	// population is partitioned across them.
	Concurrency int
	// Nodes is the logical node population (ids 0..Nodes-1).
	Nodes int
	// RowsPerNode is how many readings each addressed node contributes
	// to one batch (default 8).
	RowsPerNode int
	// NodesPerRequest bounds how many of a worker's nodes are
	// interleaved into one batch; 0 means all of them (the bulk shape).
	// 1 with RowsPerNode 1 is the single-row baseline.
	NodesPerRequest int
	// Metrics is the raw reading width. When zero it is discovered from
	// GET /api/schema.
	Metrics int
	// Seed drives the synthetic readings (skewed per node).
	Seed int64
	// HonorRetry sleeps out the server's Retry-After advice after a 429
	// before the next request. Leave false to measure shed rate at
	// sustained overload.
	HonorRetry bool
	// Client optionally overrides the HTTP client.
	Client *http.Client
}

// FleetResult summarizes one bulk-ingest run. The embedded Result's
// Rows counts ACCEPTED readings (so RowsPerSec is accepted throughput);
// always OfferedRows == Rows + RejectedRows + ShedRows.
type FleetResult struct {
	Result
	// Nodes is the logical node population driven.
	Nodes int `json:"nodes"`
	// OfferedRows / RejectedRows / ShedRows aggregate the server's
	// per-batch accounting across every completed request.
	OfferedRows  int64 `json:"offered_rows"`
	RejectedRows int64 `json:"rejected_rows"`
	ShedRows     int64 `json:"shed_rows"`
	// Throttled counts 429 responses (partial accepts, not errors).
	Throttled int `json:"throttled_requests"`
}

// bulkAccounting is the slice of the bulk response the driver reads.
type bulkAccounting struct {
	Offered      int   `json:"offered"`
	Accepted     int   `json:"accepted"`
	Rejected     int   `json:"rejected"`
	Shed         int   `json:"shed"`
	RetryAfterMs int64 `json:"retry_after_ms"`
}

// fleetNode is one logical node's generator state: a monotone timestep
// and a node-seeded value stream.
type fleetNode struct {
	id  int
	app string
	t   int
	rng *rand.Rand
}

// Fleet generates bulk-ingest load per cfg and returns the merged
// measurement.
func Fleet(cfg FleetConfig) (*FleetResult, error) {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if cfg.Nodes <= 0 {
		return nil, errors.New("loadgen: fleet needs a positive node count")
	}
	if cfg.Concurrency > cfg.Nodes {
		cfg.Concurrency = cfg.Nodes
	}
	if cfg.RowsPerNode <= 0 {
		cfg.RowsPerNode = 8
	}
	if cfg.Duration <= 0 {
		return nil, errors.New("loadgen: duration must be positive")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	metrics := cfg.Metrics
	if metrics == 0 {
		var err error
		if metrics, err = FetchMetrics(client, cfg.BaseURL); err != nil {
			return nil, fmt.Errorf("loadgen: discovering metric width: %w", err)
		}
	}

	url := cfg.BaseURL + "/api/ingest/bulk"
	deadline := time.Now().Add(cfg.Duration)
	stats := make([]workerStats, cfg.Concurrency)
	extras := make([]fleetWorkerExtra, cfg.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fleetWorker(cfg, client, url, metrics, w, deadline, &stats[w], &extras[w])
		}(w)
	}
	wg.Wait()
	merged, err := mergeStats(stats, time.Since(start))
	if err != nil {
		return nil, err
	}
	res := &FleetResult{Result: *merged, Nodes: cfg.Nodes}
	for i := range extras {
		res.OfferedRows += extras[i].offered
		res.RejectedRows += extras[i].rejected
		res.ShedRows += extras[i].shed
		res.Throttled += extras[i].throttled
	}
	return res, nil
}

// fleetWorkerExtra is the bulk accounting one request loop accumulates
// on top of the shared workerStats.
type fleetWorkerExtra struct {
	offered   int64
	rejected  int64
	shed      int64
	throttled int
}

// fleetWorker runs one request loop over its partition of the node
// population (nodes w, w+C, w+2C, ...).
func fleetWorker(cfg FleetConfig, client *http.Client, url string, metrics, w int, deadline time.Time, st *workerStats, ex *fleetWorkerExtra) {
	var owned []*fleetNode
	for n := w; n < cfg.Nodes; n += cfg.Concurrency {
		owned = append(owned, &fleetNode{
			id:  n,
			app: fmt.Sprintf("app-%02d", n%16),
			rng: rand.New(rand.NewSource(runner.CellSeed(cfg.Seed, n))),
		})
	}
	group := cfg.NodesPerRequest
	if group <= 0 || group > len(owned) {
		group = len(owned)
	}
	body := make([]byte, 0, 4096)
	cursor := 0
	for time.Now().Before(deadline) {
		body = body[:0]
		body = append(body, `{"rows":[`...)
		for g := 0; g < group; g++ {
			node := owned[cursor]
			cursor = (cursor + 1) % len(owned)
			for r := 0; r < cfg.RowsPerNode; r++ {
				if len(body) > len(`{"rows":[`) {
					body = append(body, ',')
				}
				body = appendBulkRow(body, node, metrics)
				node.t++
			}
		}
		body = append(body, `]}`...)

		t0 := time.Now()
		acct, status, err := postBulkBody(client, url, body)
		st.lat = append(st.lat, time.Since(t0))
		st.requests++
		switch {
		case err != nil:
			st.errors++
		case status == http.StatusOK, status == http.StatusTooManyRequests:
			st.rows += acct.Accepted
			ex.offered += int64(acct.Offered)
			ex.rejected += int64(acct.Rejected)
			ex.shed += int64(acct.Shed)
			if status == http.StatusTooManyRequests {
				ex.throttled++
				if cfg.HonorRetry && acct.RetryAfterMs > 0 {
					pause := time.Duration(acct.RetryAfterMs) * time.Millisecond
					if max := time.Second; pause > max {
						pause = max
					}
					time.Sleep(pause)
				}
			}
		default:
			st.errors++
		}
	}
}

// appendBulkRow renders one node reading in place: monotone timestep,
// node-skewed values around a per-node baseline.
func appendBulkRow(dst []byte, node *fleetNode, metrics int) []byte {
	dst = append(dst, `{"node":`...)
	dst = appendInt(dst, node.id)
	dst = append(dst, `,"app":"`...)
	dst = append(dst, node.app...)
	dst = append(dst, `","t":`...)
	dst = appendInt(dst, node.t)
	dst = append(dst, `,"values":[`...)
	base := float64(node.id%7) * 0.1
	for m := 0; m < metrics; m++ {
		if m > 0 {
			dst = append(dst, ',')
		}
		dst = appendFloat(dst, base+node.rng.Float64())
	}
	return append(dst, `]}`...)
}

// postBulkBody sends one bulk batch and decodes the server's
// accounting. 200 and 429 both carry accounting; anything else is a
// transport- or server-level failure.
func postBulkBody(client *http.Client, url string, body []byte) (bulkAccounting, int, error) {
	var acct bulkAccounting
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return acct, 0, err
	}
	status := resp.StatusCode
	if status == http.StatusOK || status == http.StatusTooManyRequests {
		err = json.NewDecoder(resp.Body).Decode(&acct)
	} else {
		drainBody(resp)
	}
	if cerr := resp.Body.Close(); err == nil && cerr != nil {
		err = cerr
	}
	return acct, status, err
}

// drainBody empties a response body so the connection is reused.
func drainBody(resp *http.Response) {
	var sink [512]byte
	for {
		if _, err := resp.Body.Read(sink[:]); err != nil {
			return
		}
	}
}

// appendInt is strconv.AppendInt without the int64 noise at call sites.
func appendInt(dst []byte, v int) []byte {
	return strconv.AppendInt(dst, int64(v), 10)
}
