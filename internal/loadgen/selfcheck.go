// Selfcheck is the reproducible half of the serving benchmark: it
// spins up the real annotation server in-process on a loopback
// listener, measures the serial baseline (single-vector requests,
// batching disabled — the pre-batching serving path) against the
// batched path (bulk requests, request coalescing on), and collects
// micro-benchmark numbers for the model-level batch inference. The
// committed BENCH_4.json is this report; verify.sh --deep re-runs the
// measurement and fails on regression.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"albadross/internal/active"
	"albadross/internal/dataset"
	"albadross/internal/ml"
	"albadross/internal/ml/forest"
	"albadross/internal/ml/tree"
	"albadross/internal/server"
	"albadross/internal/telemetry"
)

// SelfcheckConfig sizes the self-contained benchmark.
type SelfcheckConfig struct {
	// Duration of each load phase (serial and batched) per trial.
	Duration time.Duration
	// Trials per phase; the best trial is reported, damping scheduler
	// noise on small machines.
	Trials int
	// Concurrency is the client fleet size for both phases.
	Concurrency int
	// Rows per request in the batched phase (the serial phase is always
	// one row per request).
	Rows int
	// Seed drives the synthetic dataset and the generated traffic.
	Seed int64
}

// MicroBench holds the model-level batch-inference micro numbers,
// measured with testing.Benchmark over a fitted forest.
type MicroBench struct {
	// SerialNsPerRow is one-row-at-a-time PredictProba cost.
	SerialNsPerRow float64 `json:"forest_serial_ns_per_row"`
	// BatchNsPerRow is PredictProbaBatch cost per row.
	BatchNsPerRow float64 `json:"forest_batch_ns_per_row"`
	// SerialAllocsPerOp / BatchAllocsPerOp are allocations per 256-row
	// pass; the batch path's flat output matrix should hold this at a
	// handful regardless of row count.
	SerialAllocsPerOp int64 `json:"forest_serial_allocs_per_op"`
	BatchAllocsPerOp  int64 `json:"forest_batch_allocs_per_op"`
}

// BenchReport is the BENCH_4.json document.
type BenchReport struct {
	// SchemaVersion guards future shape changes.
	SchemaVersion int `json:"schema_version"`
	// GoMaxProcs records the parallelism the numbers were taken under.
	GoMaxProcs int `json:"gomaxprocs"`
	// Micro holds model-level numbers; Serial and Batched hold the two
	// load-generation phases; Speedup is batched/serial rows-per-second.
	Micro   MicroBench `json:"micro"`
	Serial  *Result    `json:"serial"`
	Batched *Result    `json:"batched"`
	Speedup float64    `json:"speedup"`
}

// benchDim is the synthetic dataset's feature width — wide enough that
// JSON encode/decode per request is realistic, narrow enough to keep
// the benchmark fast.
const benchDim = 32

// newBenchServer builds the synthetic annotation server the benchmark
// drives. The dataset is a separable 3-class problem; the model is the
// production default (entropy forest).
func newBenchServer(seed int64, batchMax int) (*server.Server, error) {
	classes := []string{"healthy", "cpuoccupy", "memleak"}
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(classes)
	for i := 0; i < 600; i++ {
		label := 0
		if rng.Float64() < 0.2 {
			label = 1 + rng.Intn(2)
		}
		x := make([]float64, benchDim)
		for j := range x {
			x[j] = rng.Float64() * 0.3
		}
		if label > 0 {
			x[label-1] += 0.8
		}
		if err := d.Add(x, classes[label], telemetry.RunMeta{App: "BT", Node: i % 8}); err != nil {
			return nil, err
		}
	}
	split, err := dataset.MakeALSplit(d, dataset.ALSplitConfig{
		TestFraction: 0.3, AnomalyRatio: 0.10, HealthyClass: 0, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return server.New(server.Config{
		Data:  d,
		Split: split,
		Factory: forest.NewFactory(forest.Config{
			NEstimators: 40, MaxDepth: 10, Criterion: tree.Entropy, Seed: seed,
		}),
		Strategy:     active.Uncertainty{},
		Seed:         seed + 7,
		BatchMaxSize: batchMax,
	})
}

// runPhase measures one serving configuration, returning the best of
// cfg.Trials runs by rows-per-second.
func runPhase(cfg SelfcheckConfig, batchMax, rows int) (*Result, error) {
	srv, err := newBenchServer(cfg.Seed, batchMax)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	var best *Result
	for t := 0; t < cfg.Trials; t++ {
		res, err := Run(Config{
			BaseURL:     hts.URL,
			Duration:    cfg.Duration,
			Concurrency: cfg.Concurrency,
			Rows:        rows,
			Dim:         benchDim,
			Seed:        cfg.Seed + int64(t),
		})
		if err != nil {
			return nil, err
		}
		if res.Errors > 0 {
			return nil, fmt.Errorf("loadgen: %d of %d requests failed", res.Errors, res.Requests)
		}
		if best == nil || res.RowsPerSec > best.RowsPerSec {
			best = res
		}
	}
	return best, nil
}

// runMicro measures model-level inference cost with testing.Benchmark.
func runMicro(seed int64) (MicroBench, error) {
	var mb MicroBench
	rng := rand.New(rand.NewSource(seed))
	n, k := 512, 3
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		y[i] = i % k
		x[i] = make([]float64, benchDim)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
		x[i][y[i]] += 2
	}
	f := forest.New(forest.Config{NEstimators: 20, MaxDepth: 8, Seed: seed})
	if err := f.Fit(x, y, k); err != nil {
		return mb, err
	}
	rows := x[:256]
	serial := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ml.ProbaBatch(f, rows)
		}
	})
	batch := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.PredictProbaBatch(rows)
		}
	})
	mb.SerialNsPerRow = float64(serial.NsPerOp()) / float64(len(rows))
	mb.BatchNsPerRow = float64(batch.NsPerOp()) / float64(len(rows))
	mb.SerialAllocsPerOp = serial.AllocsPerOp()
	mb.BatchAllocsPerOp = batch.AllocsPerOp()
	return mb, nil
}

// Selfcheck runs the full in-process benchmark and returns the report.
func Selfcheck(cfg SelfcheckConfig, gomaxprocs int, logf func(string, ...interface{})) (*BenchReport, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Rows <= 0 {
		cfg.Rows = 64
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	logf("micro: forest inference over 256x%d rows", benchDim)
	micro, err := runMicro(cfg.Seed)
	if err != nil {
		return nil, err
	}
	logf("micro: serial %.0f ns/row (%d allocs/op), batch %.0f ns/row (%d allocs/op)",
		micro.SerialNsPerRow, micro.SerialAllocsPerOp, micro.BatchNsPerRow, micro.BatchAllocsPerOp)

	logf("phase serial: 1 row/request, batching off, %d clients, %s x %d trials",
		cfg.Concurrency, cfg.Duration, cfg.Trials)
	serial, err := runPhase(cfg, 1, 1)
	if err != nil {
		return nil, fmt.Errorf("serial phase: %w", err)
	}
	logf("phase serial: %.0f rows/s, p50 %.2fms p99 %.2fms", serial.RowsPerSec, serial.P50Ms, serial.P99Ms)

	logf("phase batched: %d rows/request, coalescing on, %d clients, %s x %d trials",
		cfg.Rows, cfg.Concurrency, cfg.Duration, cfg.Trials)
	batched, err := runPhase(cfg, 64, cfg.Rows)
	if err != nil {
		return nil, fmt.Errorf("batched phase: %w", err)
	}
	logf("phase batched: %.0f rows/s, p50 %.2fms p99 %.2fms", batched.RowsPerSec, batched.P50Ms, batched.P99Ms)

	report := &BenchReport{
		SchemaVersion: 1,
		GoMaxProcs:    gomaxprocs,
		Micro:         micro,
		Serial:        serial,
		Batched:       batched,
	}
	if serial.RowsPerSec > 0 {
		report.Speedup = batched.RowsPerSec / serial.RowsPerSec
	}
	logf("speedup: %.2fx (batched %.0f vs serial %.0f rows/s)",
		report.Speedup, batched.RowsPerSec, serial.RowsPerSec)
	return report, nil
}

// LoadReport reads a committed BENCH_4.json.
func LoadReport(path string) (*BenchReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// Compare checks a fresh report against the committed baseline:
// the batched throughput may not regress more than tolerance (a
// fraction, e.g. 0.2), and the batched-over-serial speedup must stay at
// or above minSpeedup. The micro bench is gated on load-invariant
// signals only — the batch/serial cost ratio and the allocation count —
// because absolute ns/row shifts with host load and would flake on
// shared runners. It returns a list of human-readable violations,
// empty when the run passes.
func Compare(fresh, baseline *BenchReport, tolerance, minSpeedup float64) []string {
	var bad []string
	if baseline.Batched != nil && fresh.Batched != nil {
		floor := baseline.Batched.RowsPerSec * (1 - tolerance)
		if fresh.Batched.RowsPerSec < floor {
			bad = append(bad, fmt.Sprintf(
				"batched throughput regressed: %.0f rows/s vs baseline %.0f (floor %.0f at %.0f%% tolerance)",
				fresh.Batched.RowsPerSec, baseline.Batched.RowsPerSec, floor, tolerance*100))
		}
	}
	if fresh.Speedup < minSpeedup {
		bad = append(bad, fmt.Sprintf(
			"batched/serial speedup %.2fx is below the required %.1fx", fresh.Speedup, minSpeedup))
	}
	if baseline.Micro.SerialNsPerRow > 0 && baseline.Micro.BatchNsPerRow > 0 &&
		fresh.Micro.SerialNsPerRow > 0 && fresh.Micro.BatchNsPerRow > 0 {
		baseRatio := baseline.Micro.BatchNsPerRow / baseline.Micro.SerialNsPerRow
		freshRatio := fresh.Micro.BatchNsPerRow / fresh.Micro.SerialNsPerRow
		ceil := baseRatio * (1 + tolerance)
		if freshRatio > ceil {
			bad = append(bad, fmt.Sprintf(
				"micro batch/serial cost ratio regressed: %.2f vs baseline %.2f (ceiling %.2f)",
				freshRatio, baseRatio, ceil))
		}
	}
	if baseline.Micro.BatchAllocsPerOp > 0 && fresh.Micro.BatchAllocsPerOp > baseline.Micro.BatchAllocsPerOp+2 {
		bad = append(bad, fmt.Sprintf(
			"micro batch inference allocates more: %d allocs/op vs baseline %d",
			fresh.Micro.BatchAllocsPerOp, baseline.Micro.BatchAllocsPerOp))
	}
	return bad
}
