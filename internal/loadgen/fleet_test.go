package loadgen

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"albadross/internal/server"
)

// benchFleetURL spins the fleet bench server on a loopback listener.
func benchFleetURL(t *testing.T, shards int) string {
	t.Helper()
	srv, err := NewFleetBenchServer(11, server.FleetConfig{
		IngestConfig: server.IngestConfig{Shards: shards},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(hts.Close)
	return hts.URL
}

func TestFleetDriverRoundTrip(t *testing.T) {
	url := benchFleetURL(t, 2)
	res, err := Fleet(FleetConfig{
		BaseURL:     url,
		Duration:    300 * time.Millisecond,
		Concurrency: 2,
		Nodes:       8,
		RowsPerNode: 4,
		Seed:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("fleet driver saw %d errors over %d requests", res.Errors, res.Requests)
	}
	if res.Rows == 0 {
		t.Fatal("no rows accepted")
	}
	if res.RejectedRows != 0 {
		t.Fatalf("server rejected %d rows — generator width or monotonicity broke", res.RejectedRows)
	}
	// The accounting identity the server promises per batch must
	// survive aggregation across workers and requests.
	if res.OfferedRows != int64(res.Rows)+res.RejectedRows+res.ShedRows {
		t.Fatalf("accounting identity broke: offered %d != accepted %d + rejected %d + shed %d",
			res.OfferedRows, res.Rows, res.RejectedRows, res.ShedRows)
	}
	if res.RowsPerSec <= 0 || res.P99Ms < res.P50Ms {
		t.Fatalf("implausible measurement: %+v", res)
	}
}

func TestFleetDriverSingleRowShape(t *testing.T) {
	url := benchFleetURL(t, 2)
	res, err := Fleet(FleetConfig{
		BaseURL:         url,
		Duration:        200 * time.Millisecond,
		Concurrency:     1,
		Nodes:           4,
		RowsPerNode:     1,
		NodesPerRequest: 1,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One node, one reading per request: offered must equal requests
	// that completed successfully.
	if res.OfferedRows != int64(res.Requests-res.Errors) {
		t.Fatalf("single-row shape offered %d rows over %d ok requests",
			res.OfferedRows, res.Requests-res.Errors)
	}
}

func TestFetchSchemaDiscovery(t *testing.T) {
	url := benchFleetURL(t, 2)
	client := &http.Client{Timeout: 10 * time.Second}
	n, err := FetchMetrics(client, url)
	if err != nil {
		t.Fatal(err)
	}
	if n != FleetMetrics {
		t.Fatalf("FetchMetrics = %d, want %d", n, FleetMetrics)
	}
	dim, err := FetchDim(client, url)
	if err != nil {
		t.Fatal(err)
	}
	if dim <= 0 {
		t.Fatalf("FetchDim = %d", dim)
	}
}

func TestFetchMetricsErrorsWithoutWindowMode(t *testing.T) {
	srv, err := newBenchServer(3, 1) // feature-space server: no raw schema
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(hts.Close)
	if _, err := FetchMetrics(hts.Client(), hts.URL); err == nil {
		t.Fatal("FetchMetrics succeeded against a server without window mode")
	}
}

func TestFleetSelfcheckSmoke(t *testing.T) {
	rep, err := FleetSelfcheck(FleetSelfcheckConfig{
		Duration:    200 * time.Millisecond,
		Trials:      1,
		Concurrency: 2,
		Nodes:       8,
		Shards:      2,
		RowsPerNode: 4,
		Seed:        7,
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Single == nil || rep.Bulk == nil || rep.Speedup <= 0 {
		t.Fatalf("degenerate selfcheck report: %+v", rep)
	}
	if rep.Nodes != 8 || rep.Shards != 2 {
		t.Fatalf("report geometry %d nodes / %d shards, want 8 / 2", rep.Nodes, rep.Shards)
	}
}

func TestPercentileSortsInPlace(t *testing.T) {
	lat := []time.Duration{5, 1, 9, 3, 7}
	if got := Percentile(lat, 0.5); got != 5 {
		t.Fatalf("median of unsorted population = %v, want 5", got)
	}
	if got := Percentile(lat, 1); got != 9 {
		t.Fatalf("max = %v, want 9", got)
	}
	if got := Percentile(lat, 0); got != 1 {
		t.Fatalf("min = %v, want 1", got)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty population = %v, want 0", got)
	}
}
