// Fleet selfcheck: the reproducible half of BENCH_6.json. It spins up
// the real annotation server in fleet mode on a loopback listener and
// measures the single-row ingest baseline (one node, one reading per
// request) against bulk multi-node batches on the same node population
// and worker fleet. verify.sh --deep re-runs the measurement and gates
// on load-invariant signals via experiments.CompareBench6.
package loadgen

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"time"

	"albadross/internal/active"
	"albadross/internal/dataset"
	"albadross/internal/features"
	"albadross/internal/features/mvts"
	"albadross/internal/ml/forest"
	"albadross/internal/server"
	"albadross/internal/telemetry"
	"albadross/internal/ts"
)

// FleetMetrics is the raw telemetry width of the fleet bench server's
// schema; bulk rows posted at it must carry exactly this many values.
const FleetMetrics = 3

// NewFleetBenchServer builds the synthetic fleet-mode annotation server
// the benchmark drives: a 3-metric schema, an mvts feature space, a
// cheap deterministic forest, and the caller's fleet geometry. Zeroed
// window geometry defaults to Window 16 / Stride 16. The same
// constructor serves the load phases here and the overload, recovery,
// and rollup-invariance gates in internal/experiments — one server
// shape across every BENCH_6 measurement.
func NewFleetBenchServer(seed int64, fc server.FleetConfig) (*server.Server, error) {
	if fc.Shards <= 0 {
		fc.Shards = 4
	}
	if fc.Window == 0 {
		fc.Window = 16
	}
	if fc.Stride == 0 {
		fc.Stride = fc.Window
	}
	schema := []telemetry.Metric{{Name: "cpu.user"}, {Name: "mem.active"}, {Name: "net.rx"}}
	ext := mvts.Extractor{}
	classes := []string{"healthy", "cpuoccupy", "memleak"}
	rng := rand.New(rand.NewSource(seed))
	d := dataset.New(classes)
	for i := 0; i < 120; i++ {
		label := i % len(classes)
		block := &ts.Multivariate{Metrics: make([]ts.Series, len(schema))}
		for m := range block.Metrics {
			level := 1.0
			if label > 0 && m == label-1 {
				level = 6.0
			}
			s := make(ts.Series, 32)
			for j := range s {
				s[j] = level + 0.1*rng.NormFloat64()
			}
			block.Metrics[m] = s
		}
		vec := features.ExtractSample(ext, block)
		features.Sanitize(vec)
		if err := d.Add(vec, classes[label], telemetry.RunMeta{App: "BT", Node: i % 8}); err != nil {
			return nil, err
		}
	}
	split, err := dataset.MakeALSplit(d, dataset.ALSplitConfig{
		TestFraction: 0.3, AnomalyRatio: 0.34, HealthyClass: 0, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	// Label the whole pool up front so repeated constructions train the
	// identical champion — the recovery gate compares rollups across a
	// restart and depends on it.
	split.Initial = append(split.Initial, split.Pool...)
	split.Pool = nil
	return server.New(server.Config{
		Data:      d,
		Split:     split,
		Factory:   forest.NewFactory(forest.Config{NEstimators: 10, MaxDepth: 6, Seed: seed}),
		Strategy:  active.Uncertainty{},
		Seed:      seed + 7,
		Schema:    schema,
		Extractor: ext,
		Fleet:     fc,
	})
}

// FleetSelfcheckConfig sizes the fleet benchmark's load phases.
type FleetSelfcheckConfig struct {
	// Duration of each load phase per trial.
	Duration time.Duration
	// Trials per phase; the best trial is reported.
	Trials int
	// Concurrency is the client fleet size for both phases.
	Concurrency int
	// Nodes is the logical node population.
	Nodes int
	// Shards is the server's ingest worker count.
	Shards int
	// RowsPerNode is the per-node reading count per bulk batch (the
	// single phase is always one node, one reading per request).
	RowsPerNode int
	// Seed drives the synthetic training data and traffic.
	Seed int64
}

// FleetLoadReport holds the two fleet load phases at one node count.
type FleetLoadReport struct {
	// Nodes and Shards record the geometry measured.
	Nodes  int `json:"nodes"`
	Shards int `json:"shards"`
	// Single is the one-node-one-reading baseline; Bulk is the
	// interleaved multi-node batch phase; Speedup is bulk/single
	// accepted rows-per-second.
	Single  *FleetResult `json:"single"`
	Bulk    *FleetResult `json:"bulk"`
	Speedup float64      `json:"speedup"`
}

// runFleetPhase measures one request shape, returning the best of
// cfg.Trials runs by accepted rows-per-second. Each trial gets a fresh
// server: the generator restarts per-node timestamps at zero, and a
// reused server would reject the repeats as duplicates.
func runFleetPhase(cfg FleetSelfcheckConfig, nodesPerRequest, rowsPerNode int) (*FleetResult, error) {
	var best *FleetResult
	for t := 0; t < cfg.Trials; t++ {
		res, err := func() (*FleetResult, error) {
			srv, err := NewFleetBenchServer(cfg.Seed, server.FleetConfig{
				IngestConfig: server.IngestConfig{Shards: cfg.Shards},
			})
			if err != nil {
				return nil, err
			}
			defer srv.Close()
			hts := httptest.NewServer(srv.Handler())
			defer hts.Close()
			return Fleet(FleetConfig{
				BaseURL:         hts.URL,
				Duration:        cfg.Duration,
				Concurrency:     cfg.Concurrency,
				Nodes:           cfg.Nodes,
				RowsPerNode:     rowsPerNode,
				NodesPerRequest: nodesPerRequest,
				Metrics:         FleetMetrics,
				Seed:            cfg.Seed + int64(t),
			})
		}()
		if err != nil {
			return nil, err
		}
		if res.Errors > 0 {
			return nil, fmt.Errorf("loadgen: %d of %d fleet requests failed", res.Errors, res.Requests)
		}
		if res.RejectedRows > 0 {
			return nil, fmt.Errorf("loadgen: server rejected %d fleet rows", res.RejectedRows)
		}
		if best == nil || res.RowsPerSec > best.RowsPerSec {
			best = res
		}
	}
	return best, nil
}

// FleetSelfcheck measures both fleet load phases and returns the
// report for one node count.
func FleetSelfcheck(cfg FleetSelfcheckConfig, logf func(string, ...interface{})) (*FleetLoadReport, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = 2 * time.Second
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 64
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.RowsPerNode <= 0 {
		cfg.RowsPerNode = 8
	}
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}

	logf("fleet phase single: %d nodes, 1 row/request, %d clients, %s x %d trials",
		cfg.Nodes, cfg.Concurrency, cfg.Duration, cfg.Trials)
	single, err := runFleetPhase(cfg, 1, 1)
	if err != nil {
		return nil, fmt.Errorf("single phase: %w", err)
	}
	logf("fleet phase single: %.0f rows/s accepted, p50 %.2fms p99 %.2fms",
		single.RowsPerSec, single.P50Ms, single.P99Ms)

	logf("fleet phase bulk: %d nodes, %d rows/node interleaved, %d clients, %s x %d trials",
		cfg.Nodes, cfg.RowsPerNode, cfg.Concurrency, cfg.Duration, cfg.Trials)
	bulk, err := runFleetPhase(cfg, 0, cfg.RowsPerNode)
	if err != nil {
		return nil, fmt.Errorf("bulk phase: %w", err)
	}
	logf("fleet phase bulk: %.0f rows/s accepted, p50 %.2fms p99 %.2fms",
		bulk.RowsPerSec, bulk.P50Ms, bulk.P99Ms)

	report := &FleetLoadReport{Nodes: cfg.Nodes, Shards: cfg.Shards, Single: single, Bulk: bulk}
	if single.RowsPerSec > 0 {
		report.Speedup = bulk.RowsPerSec / single.RowsPerSec
	}
	logf("fleet speedup at %d nodes: %.2fx (bulk %.0f vs single %.0f rows/s)",
		cfg.Nodes, report.Speedup, bulk.RowsPerSec, single.RowsPerSec)
	return report, nil
}
