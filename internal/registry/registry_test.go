package registry

import (
	"strings"
	"sync"
	"testing"
)

type fake struct {
	version uint64
	name    string
}

func mk(name string) func(uint64) *fake {
	return func(v uint64) *fake { return &fake{version: v, name: name} }
}

func TestLifecycleStates(t *testing.T) {
	r := New[*fake](5)
	if r.Active() != nil {
		t.Fatal("fresh registry has an active entry")
	}
	a := r.Add(mk("a"), Meta{Origin: "initial", TrainHash: 0xabc, TrainSize: 10})
	if a.Version != 1 || a.Payload.version != 1 {
		t.Fatalf("first version = %d/%d, want 1", a.Version, a.Payload.version)
	}
	// Candidates don't serve.
	if r.Active() != nil {
		t.Fatal("candidate became active without Promote")
	}
	if err := r.Promote(a.Version); err != nil {
		t.Fatal(err)
	}
	if got := r.Active(); got != a {
		t.Fatalf("active = %+v, want entry a", got)
	}
	// Double promotion is rejected.
	if err := r.Promote(a.Version); err == nil {
		t.Fatal("promoting an active entry should error")
	}

	b := r.Add(mk("b"), Meta{Origin: "label"})
	if err := r.Promote(b.Version); err != nil {
		t.Fatal(err)
	}
	if r.Active() != b {
		t.Fatal("promotion did not swap the active pointer")
	}
	// a retired; listing reflects it.
	var aState State
	for _, info := range r.List() {
		if info.Version == a.Version {
			aState = info.State
		}
	}
	if aState != Retired {
		t.Fatalf("previous active state = %s, want retired", aState)
	}
}

func TestQuarantineIsTerminal(t *testing.T) {
	r := New[*fake](5)
	a := r.Add(mk("a"), Meta{})
	if err := r.Promote(a.Version); err != nil {
		t.Fatal(err)
	}
	bad := r.Add(mk("poisoned"), Meta{Origin: "drift-retrain"})
	if err := r.Quarantine(bad.Version, "agreement 0.12 below gate"); err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(bad.Version); err == nil {
		t.Fatal("quarantined entry promoted")
	}
	if err := r.Quarantine(bad.Version, "again"); err == nil {
		t.Fatal("double quarantine should error")
	}
	if r.Active() != a {
		t.Fatal("quarantine disturbed the active pointer")
	}
	for _, info := range r.List() {
		if info.Version == bad.Version {
			if info.State != Quarantined || !strings.Contains(info.Reason, "agreement") {
				t.Fatalf("quarantined info = %+v", info)
			}
		}
	}
}

func TestRollbackSkipsQuarantinedAndRolledBack(t *testing.T) {
	r := New[*fake](10)
	versions := make([]*Entry[*fake], 0, 3)
	for _, n := range []string{"v1", "v2", "v3"} {
		e := r.Add(mk(n), Meta{})
		if err := r.Promote(e.Version); err != nil {
			t.Fatal(err)
		}
		versions = append(versions, e)
	}
	// Active v3; retired v1, v2. Roll back → v2.
	got, err := r.Rollback("operator")
	if err != nil {
		t.Fatal(err)
	}
	if got != versions[1] || r.Active() != versions[1] {
		t.Fatalf("rollback landed on %+v, want v2", got)
	}
	// v3 is RolledBack now: a second rollback must land on v1, not v3.
	got, err = r.Rollback("operator")
	if err != nil {
		t.Fatal(err)
	}
	if got != versions[0] {
		t.Fatalf("second rollback landed on version %d, want v1", got.Version)
	}
	// Nothing retired below v1 remains.
	if _, err := r.Rollback("operator"); err == nil {
		t.Fatal("rollback with no target should error")
	}
}

func TestRollbackWithoutActive(t *testing.T) {
	r := New[*fake](5)
	if _, err := r.Rollback("x"); err == nil {
		t.Fatal("rollback on empty registry should error")
	}
}

func TestEvictionKeepsLiveEntries(t *testing.T) {
	r := New[*fake](3)
	var last *Entry[*fake]
	for i := 0; i < 6; i++ {
		last = r.Add(mk("m"), Meta{})
		if err := r.Promote(last.Version); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3 after eviction", r.Len())
	}
	if r.Active() != last {
		t.Fatal("eviction displaced the active entry")
	}
	// Lowest versions went first: the survivors are the newest three.
	for _, info := range r.List() {
		if info.Version < 4 {
			t.Fatalf("old version %d survived eviction", info.Version)
		}
	}
	// A candidate is never evicted even at capacity.
	cand := r.Add(mk("cand"), Meta{})
	for i := 0; i < 3; i++ {
		e := r.Add(mk("m"), Meta{})
		if err := r.Promote(e.Version); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Get(cand.Version); got == nil {
		t.Fatal("candidate evicted while awaiting its decision")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	r := New[*fake](5)
	e := r.Add(mk("a"), Meta{})
	if err := r.SetStats(e.Version, Stats{Agreement: 0.97, MacroF1: 0.88, ShadowRows: 512}); err != nil {
		t.Fatal(err)
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].Stats == nil {
		t.Fatalf("stats missing from listing: %+v", infos)
	}
	if s := infos[0].Stats; s.ShadowRows != 512 || s.Agreement != 0.97 { //albacheck:ignore floatsafe round-trip test requires bit-exact equality
		t.Fatalf("stats = %+v", s)
	}
	if err := r.SetStats(999, Stats{}); err == nil {
		t.Fatal("stats on unknown version should error")
	}
}

func TestConcurrentReadersSeeCompleteEntries(t *testing.T) {
	r := New[*fake](4)
	e := r.Add(mk("seed"), Meta{})
	if err := r.Promote(e.Version); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := r.Active()
				if a == nil {
					t.Error("active pointer vanished mid-churn")
					return
				}
				// Payload must be fully built: its version matches.
				if a.Payload == nil || a.Payload.version != a.Version {
					t.Errorf("half-published entry: %+v", a)
					return
				}
				_ = r.List()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		n := r.Add(mk("churn"), Meta{})
		if err := r.Promote(n.Version); err != nil {
			t.Fatal(err)
		}
		if i%3 == 2 {
			if _, err := r.Rollback("test"); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
