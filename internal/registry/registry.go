// Package registry is the versioned model store of the lifecycle layer
// (ROADMAP item 2): an in-process, bounded history of immutable model
// snapshots with one atomically-published "active" pointer. The
// registry owns the serving pointer so that promotion and rollback are
// each a single pointer swap — readers on the diagnose hot path never
// take the registry mutex, and can never observe a half-published
// entry.
//
// Lifecycle of an entry:
//
//	Add → Candidate ──Promote──▶ Active ──(next Promote)──▶ Retired
//	         │                     ▲  │
//	         └──Quarantine──▶ Quarantined (terminal)
//	                               │  └──(Rollback target chosen from Retired)
//	                               └──Rollback──▶ RolledBack (terminal)
//
// Rollback re-activates the highest-versioned Retired entry below the
// current active version; the version rolled away from becomes
// RolledBack and is skipped by future rollbacks, exactly like
// Quarantined entries — a model deposed for cause never serves again
// without an explicit re-Add. Retention keeps the most recent K
// entries; Active and Candidate entries are never evicted.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"albadross/internal/obs"
)

// State is an entry's position in the lifecycle.
type State string

// Entry states. Candidate and Active are live; Retired entries are
// rollback targets; Quarantined and RolledBack are terminal.
const (
	Candidate   State = "candidate"
	Active      State = "active"
	Retired     State = "retired"
	Quarantined State = "quarantined"
	RolledBack  State = "rolled_back"
)

// Stats are windowed evaluation numbers attached to an entry by the
// promotion machinery (shadow agreement, holdout macro-F1, ...).
type Stats struct {
	// Agreement is the fraction of shadow-scored rows on which the
	// entry agreed with the then-champion.
	Agreement float64 `json:"agreement"`
	// MacroF1 is the entry's holdout macro-F1 at evaluation time.
	MacroF1 float64 `json:"macro_f1"`
	// ShadowRows is how many duplicated rows the entry scored before
	// its promotion decision.
	ShadowRows int `json:"shadow_rows"`
}

// Meta is caller-supplied provenance recorded at Add time.
type Meta struct {
	// TrainHash fingerprints the training set (e.g. FNV over the
	// feature matrix) so operators can tell two versions apart.
	TrainHash uint64
	// TrainSize is the number of training rows.
	TrainSize int
	// Origin says what produced the entry: "initial", "label",
	// "drift-retrain", "operator", ...
	Origin string
}

// Entry is one immutable model snapshot plus its mutable lifecycle
// record. Version, Meta and Payload never change after Add; state,
// stats and reason are guarded by the owning registry's mutex.
type Entry[T any] struct {
	// Version is the registry-assigned, strictly increasing version.
	Version uint64
	// Meta is the provenance recorded at Add time.
	Meta Meta
	// Payload is the immutable snapshot being versioned.
	Payload T

	created time.Time
	state   State
	reason  string
	stats   Stats
	hasStat bool
}

// Info is a JSON-friendly copy of an entry's record for /api/model.
type Info struct {
	Version   uint64 `json:"version"`
	State     State  `json:"state"`
	Origin    string `json:"origin,omitempty"`
	TrainHash string `json:"train_hash"`
	TrainSize int    `json:"train_size"`
	Reason    string `json:"reason,omitempty"`
	Stats     *Stats `json:"stats,omitempty"`
}

// Registry keeps the last K snapshots and the active serving pointer.
// Active() is lock-free; every mutation takes mu.
type Registry[T any] struct {
	mu      sync.Mutex
	keep    int
	next    uint64
	entries map[uint64]*Entry[T]
	active  atomic.Pointer[Entry[T]]
}

var (
	registryEntries = obs.NewGauge(obs.Opts{
		Name: "registry_entries",
		Help: "Model snapshots currently retained in the registry.",
		Unit: "entries",
	})
	registryEvictions = obs.NewCounter(obs.Opts{
		Name: "registry_evictions_total",
		Help: "Model snapshots evicted by the registry retention policy.",
		Unit: "entries",
	})
)

// New builds a registry retaining at most keep entries (minimum 2, so
// an active model and one rollback target always fit).
func New[T any](keep int) *Registry[T] {
	if keep < 2 {
		keep = 2
	}
	return &Registry[T]{keep: keep, entries: make(map[uint64]*Entry[T])}
}

// Add registers a new Candidate entry. The payload is constructed by
// build, which receives the assigned version — snapshots usually carry
// their own version, and this closes the loop without a second lock.
// Add never publishes: the entry does not serve until Promote.
func (r *Registry[T]) Add(build func(version uint64) T, meta Meta) *Entry[T] {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.next++
	e := &Entry[T]{
		Version: r.next,
		Meta:    meta,
		Payload: build(r.next),
		created: time.Now(),
		state:   Candidate,
	}
	r.entries[e.Version] = e
	r.evictLocked()
	registryEntries.Set(float64(len(r.entries)))
	return e
}

// Promote makes a Candidate entry the active version; the previous
// active entry (if any) retires. The serving pointer is swapped only
// after the entry's record is fully updated, so a concurrent Active()
// sees either the old complete entry or the new complete entry.
func (r *Registry[T]) Promote(version uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[version]
	if !ok {
		return fmt.Errorf("registry: version %d not found", version)
	}
	if e.state != Candidate {
		return fmt.Errorf("registry: version %d is %s, only candidates promote", version, e.state)
	}
	if prev := r.active.Load(); prev != nil {
		prev.state = Retired
	}
	e.state = Active
	r.active.Store(e)
	r.evictLocked()
	registryEntries.Set(float64(len(r.entries)))
	return nil
}

// Quarantine marks a Candidate as failed vetting; it can never serve.
func (r *Registry[T]) Quarantine(version uint64, reason string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[version]
	if !ok {
		return fmt.Errorf("registry: version %d not found", version)
	}
	if e.state != Candidate {
		return fmt.Errorf("registry: version %d is %s, only candidates quarantine", version, e.state)
	}
	e.state = Quarantined
	e.reason = reason
	r.evictLocked()
	registryEntries.Set(float64(len(r.entries)))
	return nil
}

// Rollback re-activates the newest Retired entry older than the
// current active version, in one serving-pointer swap. The deposed
// entry becomes RolledBack and is skipped by future rollbacks.
func (r *Registry[T]) Rollback(reason string) (*Entry[T], error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cur := r.active.Load()
	if cur == nil {
		return nil, errors.New("registry: nothing active to roll back")
	}
	var target *Entry[T]
	for _, e := range r.entries {
		if e.state != Retired || e.Version >= cur.Version {
			continue
		}
		if target == nil || e.Version > target.Version {
			target = e
		}
	}
	if target == nil {
		return nil, errors.New("registry: no retired version to roll back to")
	}
	cur.state = RolledBack
	cur.reason = reason
	target.state = Active
	target.reason = ""
	r.active.Store(target)
	return target, nil
}

// SetStats attaches evaluation stats to a version's record.
func (r *Registry[T]) SetStats(version uint64, s Stats) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[version]
	if !ok {
		return fmt.Errorf("registry: version %d not found", version)
	}
	e.stats = s
	e.hasStat = true
	return nil
}

// Active returns the serving entry (nil before the first Promote).
// Lock-free: safe on the diagnose hot path.
func (r *Registry[T]) Active() *Entry[T] { return r.active.Load() }

// Get returns a version's entry, or nil.
func (r *Registry[T]) Get(version uint64) *Entry[T] {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.entries[version]
}

// List returns a newest-first copy of every retained entry's record.
func (r *Registry[T]) List() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.entries))
	for _, e := range r.entries {
		info := Info{
			Version:   e.Version,
			State:     e.state,
			Origin:    e.Meta.Origin,
			TrainHash: fmt.Sprintf("%016x", e.Meta.TrainHash),
			TrainSize: e.Meta.TrainSize,
			Reason:    e.reason,
		}
		if e.hasStat {
			s := e.stats
			info.Stats = &s
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version > out[j].Version })
	return out
}

// Len reports how many entries are retained.
func (r *Registry[T]) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// evictLocked enforces the K-retention policy: evict lowest-version
// terminal/retired entries first, never Active or Candidate.
func (r *Registry[T]) evictLocked() {
	for len(r.entries) > r.keep {
		var victim *Entry[T]
		for _, e := range r.entries {
			if e.state == Active || e.state == Candidate {
				continue
			}
			if victim == nil || e.Version < victim.Version {
				victim = e
			}
		}
		if victim == nil {
			return // everything live; retention yields rather than drop a serving model
		}
		delete(r.entries, victim.Version)
		registryEvictions.Inc()
	}
}
